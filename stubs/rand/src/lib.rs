//! Offline stand-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the same trait surface (`Rng`, `RngCore`, `SeedableRng`,
//! `seq::SliceRandom`, `rngs::StdRng`) backed by a xoshiro256** generator
//! seeded through SplitMix64. Streams differ from the real `rand` crate, but
//! every consumer in the workspace only relies on determinism-per-seed and
//! uniformity, never on exact values.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness (object-safe subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface; only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from all their values (or from `[0,1)`
/// for floats) — the stand-in for sampling with the `Standard` distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (reject_sample(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(reject_sample(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

/// Uniform sample in `[0, bound)` by rejection, avoiding modulo bias.
fn reject_sample<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// User-facing random-value interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample_standard(self) < p
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice helpers, mirroring `rand::seq::SliceRandom`.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the xoshiro
            // authors; guarantees a non-zero state.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn gen_range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(7);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "got {heads}");
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
