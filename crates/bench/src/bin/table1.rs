//! Table 1: all-steps vs end-of-episode reward computation on the MIPS
//! benchmark — maximum number of compatible rare nets, steps/min, and
//! episodes/min.
//!
//! The all-steps row uses the naive exact-SAT compatibility check at every
//! step (the bottleneck the paper describes); the end-of-episode row defers
//! the reward to the episode boundary. Both rows are cells of one session
//! grid: rare-net analysis and the compatibility graph are computed once and
//! served from the shared artifact store (asserted after the grid).

use deterrent_bench::{BenchInstance, HarnessOptions};
use deterrent_core::{CompatCheck, RewardMode};
use netlist::synth::BenchmarkProfile;

fn main() {
    let options = HarnessOptions::from_args();
    let instance = BenchInstance::prepare(&BenchmarkProfile::mips(), &options, 0.1);
    println!(
        "Table 1 — reward-computation ablation on {} ({} gates, {} rare nets)\n",
        instance.name,
        instance.netlist.num_logic_gates(),
        instance.analysis.len()
    );
    println!(
        "{:<28} {:>22} {:>12} {:>12}",
        "method", "max #compatible nets", "steps/min", "eps./min"
    );

    let combos = [
        (
            "Reward at all steps",
            RewardMode::AllSteps,
            CompatCheck::ExactSat,
        ),
        (
            "End-of-episode reward",
            RewardMode::EndOfEpisode,
            CompatCheck::PairwiseGraph,
        ),
    ];
    let mut rows = Vec::new();
    for (label, reward_mode, compat_check) in combos {
        let config = options
            .deterrent_config()
            .with_ablation(reward_mode, true)
            .with_compat_check(compat_check);
        let result = instance.run_deterrent(config);
        println!(
            "{:<28} {:>22} {:>12.1} {:>12.2}",
            label,
            result.metrics.max_compatible_set,
            result.metrics.steps_per_minute,
            result.metrics.episodes_per_minute
        );
        rows.push(result);
    }
    instance.assert_offline_reuse(combos.len());
    println!("\n(offline stages shared: analysis and graph computed once for both rows ✓)");

    if rows.len() == 2 {
        let speedup = rows[1].metrics.steps_per_minute / rows[0].metrics.steps_per_minute.max(1e-9);
        let drop =
            rows[0].metrics.max_compatible_set as f64 - rows[1].metrics.max_compatible_set as f64;
        println!(
            "Improvement: {speedup:.1}x steps/min, {:+.1} change in max compatible nets",
            -drop
        );
        println!("(Paper: 86.9x steps/min speed-up at a 5.6% drop in compatible nets.)");
    }
    instance.finish(&options);
}
