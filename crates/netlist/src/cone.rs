//! Fanin-cone exploration: transitive fanin and scan-input supports.
//!
//! Justifying a net only ever constrains the gates in its transitive fanin
//! (its *cone*) — the rest of the netlist is irrelevant to the query. Two
//! facts follow that the compatibility funnel exploits:
//!
//! * a SAT justification can encode the cone alone instead of the whole
//!   netlist, and
//! * two nets whose cones read **disjoint** sets of scan inputs can be
//!   justified independently and the two partial patterns merged, so their
//!   pairwise compatibility reduces to the two individual justifiabilities.

use crate::{GateKind, NetId, Netlist};

/// Computes the transitive fanin of `roots`: every gate (including primary
/// inputs and flip-flop sources, and the roots themselves) on a combinational
/// path into a root. The result is sorted by net id.
///
/// DFF *data* inputs are next-state logic and do not extend the cone under
/// the full-scan assumption.
#[must_use]
pub fn transitive_fanin(netlist: &Netlist, roots: &[NetId]) -> Vec<NetId> {
    let mut visited = vec![false; netlist.num_gates()];
    let mut stack: Vec<NetId> = Vec::new();
    for &r in roots {
        if !visited[r.index()] {
            visited[r.index()] = true;
            stack.push(r);
        }
    }
    let mut cone = Vec::new();
    while let Some(id) = stack.pop() {
        cone.push(id);
        let gate = netlist.gate(id);
        if matches!(gate.kind, GateKind::Input | GateKind::Dff) {
            continue;
        }
        for &f in &gate.fanin {
            if !visited[f.index()] {
                visited[f.index()] = true;
                stack.push(f);
            }
        }
    }
    cone.sort_unstable();
    cone
}

/// Scan-input supports of a set of root nets, stored as bitsets over the
/// positions of [`Netlist::scan_inputs`].
///
/// Row `i` answers "which scan inputs can influence `roots[i]`?"; two rows
/// with an empty intersection identify a structurally independent pair.
#[derive(Debug, Clone)]
pub struct InputSupports {
    num_blocks: usize,
    /// Row-major: `bits[root * num_blocks + block]`.
    bits: Vec<u64>,
    support_sizes: Vec<u32>,
}

impl InputSupports {
    /// Computes the supports of `roots` over the scan inputs of `netlist`.
    #[must_use]
    pub fn compute(netlist: &Netlist, roots: &[NetId]) -> Self {
        let scan = netlist.scan_inputs();
        let num_blocks = scan.len().div_ceil(64).max(1);
        // Scan-input position per net (u32::MAX = not a scan input).
        let mut scan_pos = vec![u32::MAX; netlist.num_gates()];
        for (pos, &si) in scan.iter().enumerate() {
            scan_pos[si.index()] = pos as u32;
        }

        let mut bits = vec![0u64; roots.len() * num_blocks];
        let mut support_sizes = vec![0u32; roots.len()];
        // Stamped visited buffer shared across roots to avoid re-allocation.
        let mut visited = vec![u32::MAX; netlist.num_gates()];
        let mut stack: Vec<NetId> = Vec::new();
        for (i, &root) in roots.iter().enumerate() {
            let stamp = i as u32;
            let row = &mut bits[i * num_blocks..(i + 1) * num_blocks];
            visited[root.index()] = stamp;
            stack.push(root);
            while let Some(id) = stack.pop() {
                let pos = scan_pos[id.index()];
                if pos != u32::MAX {
                    row[(pos / 64) as usize] |= 1u64 << (pos % 64);
                }
                let gate = netlist.gate(id);
                if matches!(gate.kind, GateKind::Input | GateKind::Dff) {
                    continue;
                }
                for &f in &gate.fanin {
                    if visited[f.index()] != stamp {
                        visited[f.index()] = stamp;
                        stack.push(f);
                    }
                }
            }
            support_sizes[i] = row.iter().map(|w| w.count_ones()).sum();
        }
        Self {
            num_blocks,
            bits,
            support_sizes,
        }
    }

    /// Number of root rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.support_sizes.len()
    }

    /// Returns `true` when no roots were analysed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.support_sizes.is_empty()
    }

    /// Number of scan inputs in the support of root `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn support_size(&self, i: usize) -> usize {
        self.support_sizes[i] as usize
    }

    /// Whether the supports of roots `i` and `j` share no scan input.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    #[must_use]
    pub fn disjoint(&self, i: usize, j: usize) -> bool {
        let a = &self.bits[i * self.num_blocks..(i + 1) * self.num_blocks];
        let b = &self.bits[j * self.num_blocks..(j + 1) * self.num_blocks];
        a.iter().zip(b).all(|(&x, &y)| x & y == 0)
    }

    /// The scan-input positions in the support of root `i`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn support_positions(&self, i: usize) -> Vec<usize> {
        let row = &self.bits[i * self.num_blocks..(i + 1) * self.num_blocks];
        let mut out = Vec::with_capacity(self.support_sizes[i] as usize);
        for (block, &word) in row.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                out.push(block * 64 + bit);
                w &= w - 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{samples, NetlistBuilder};

    #[test]
    fn transitive_fanin_of_c17_output() {
        let nl = samples::c17();
        let g22 = nl.net_by_name("G22").unwrap();
        let cone = transitive_fanin(&nl, &[g22]);
        assert!(cone.contains(&g22));
        // G22 = NAND(G10, G16); G10 = NAND(G1, G3); G16 = NAND(G2, G11);
        // G11 = NAND(G3, G6) -> inputs G1, G2, G3, G6 but not G7.
        for name in ["G10", "G16", "G11", "G1", "G2", "G3", "G6"] {
            assert!(cone.contains(&nl.net_by_name(name).unwrap()), "{name}");
        }
        assert!(!cone.contains(&nl.net_by_name("G7").unwrap()));
        // Sorted by id.
        assert!(cone.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn supports_of_independent_subcircuits_are_disjoint() {
        // Two AND cones over distinct inputs plus one gate mixing them.
        let mut b = NetlistBuilder::new("split");
        let a0 = b.input("a0");
        let a1 = b.input("a1");
        let b0 = b.input("b0");
        let b1 = b.input("b1");
        let left = b.gate(crate::GateKind::And, "left", &[a0, a1]).unwrap();
        let right = b.gate(crate::GateKind::And, "right", &[b0, b1]).unwrap();
        let mix = b.gate(crate::GateKind::Or, "mix", &[left, right]).unwrap();
        b.output(mix);
        let nl = b.build().unwrap();

        let supports = InputSupports::compute(&nl, &[left, right, mix]);
        assert_eq!(supports.len(), 3);
        assert!(supports.disjoint(0, 1));
        assert!(!supports.disjoint(0, 2));
        assert!(!supports.disjoint(1, 2));
        assert_eq!(supports.support_size(0), 2);
        assert_eq!(supports.support_size(2), 4);
        assert_eq!(supports.support_positions(0), vec![0, 1]);
        assert_eq!(supports.support_positions(1), vec![2, 3]);
    }

    #[test]
    fn supports_cover_whole_cone_on_samples() {
        let nl = samples::adder4();
        let roots: Vec<_> = nl.internal_nets();
        let supports = InputSupports::compute(&nl, &roots);
        let scan = nl.scan_inputs();
        for (i, &root) in roots.iter().enumerate() {
            let cone = transitive_fanin(&nl, &[root]);
            let expected: Vec<usize> = scan
                .iter()
                .enumerate()
                .filter(|(_, si)| cone.contains(si))
                .map(|(pos, _)| pos)
                .collect();
            assert_eq!(supports.support_positions(i), expected, "root {root}");
        }
    }

    #[test]
    fn dff_data_edges_do_not_extend_cones() {
        let mut b = NetlistBuilder::new("seq");
        let a = b.input("a");
        let q = b.dff("q", a);
        let g = b.gate(crate::GateKind::And, "g", &[a, q]).unwrap();
        b.set_dff_data(q, g).unwrap();
        b.output(g);
        let nl = b.build().unwrap();
        // The cone of q is just q itself: its data input is next-state logic.
        assert_eq!(transitive_fanin(&nl, &[q]), vec![q]);
        let supports = InputSupports::compute(&nl, &[q, g]);
        assert_eq!(supports.support_size(0), 1);
        assert_eq!(supports.support_size(1), 2);
    }
}
