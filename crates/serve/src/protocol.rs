//! The length-prefixed JSON frame protocol spoken over the daemon socket.
//!
//! Every message in either direction is one *frame*: a little-endian `u32`
//! byte length followed by exactly that many bytes of UTF-8 JSON — one
//! object per frame, built on [`telemetry::json`] (no serde in this
//! workspace). The object's `"type"` field discriminates:
//!
//! | type     | direction       | fields                                        |
//! |----------|-----------------|-----------------------------------------------|
//! | `submit` | client → daemon | `plan` ([`PlanSpec::to_value`]), `priority`, `stream` |
//! | `ack`    | daemon → client | `job` (daemon-assigned sequence number)       |
//! | `event`  | daemon → client | `line` (one trace event in JSONL form)        |
//! | `report` | daemon → client | `job`, `tsv` (the full report), `outcomes`    |
//! | `error`  | daemon → client | `message`                                     |
//! | `ping`   | client → daemon | —                                             |
//! | `pong`   | daemon → client | —                                             |
//!
//! A connection carries at most one `submit`: the daemon answers with an
//! `ack`, then (when `stream` was set) a sequence of `event` frames as the
//! job's cells execute, and finally exactly one `report` or `error` frame.
//! `ping`/`pong` frames may precede the submit and are how
//! `deterrent-submit --ping` probes for a live daemon.
//!
//! Frames are capped at [`MAX_FRAME_BYTES`]; a peer announcing more is a
//! protocol error, not an allocation. Clean EOF *between* frames reads as
//! `None`; EOF inside a frame is an error.

use std::io::{self, Read, Write};

use campaign::PlanSpec;
use telemetry::{obj, Value};

/// Environment variable naming the daemon socket, consulted by both
/// binaries when `--socket` is absent.
pub const SOCKET_ENV_VAR: &str = "DETERRENT_SOCKET";

/// Upper bound on one frame's payload. Generous — the largest real frame
/// is a `report` whose TSV grows linearly with cells — while keeping a
/// corrupt or hostile length prefix from looking like an allocation
/// request.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Writes `value` as one frame and flushes.
///
/// # Errors
///
/// Propagates transport errors; an over-sized frame is
/// [`io::ErrorKind::InvalidData`].
pub fn write_frame(writer: &mut impl Write, value: &Value) -> io::Result<()> {
    let json = value.to_json();
    if json.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds {MAX_FRAME_BYTES}", json.len()),
        ));
    }
    writer.write_all(&(json.len() as u32).to_le_bytes())?;
    writer.write_all(json.as_bytes())?;
    writer.flush()
}

/// Reads one frame, or `None` on clean EOF at a frame boundary.
///
/// # Errors
///
/// Propagates transport errors; an over-sized length prefix, non-UTF-8
/// payload, invalid JSON, or EOF inside a frame is
/// [`io::ErrorKind::InvalidData`] / [`io::ErrorKind::UnexpectedEof`].
pub fn read_frame(reader: &mut impl Read) -> io::Result<Option<Value>> {
    let mut len = [0u8; 4];
    // Probe one byte so EOF between frames is a clean end-of-stream
    // rather than an error.
    match reader.read(&mut len[..1])? {
        0 => return Ok(None),
        _ => reader.read_exact(&mut len[1..])?,
    }
    let n = u32::from_le_bytes(len) as usize;
    if n > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {n} exceeds {MAX_FRAME_BYTES}"),
        ));
    }
    let mut payload = vec![0u8; n];
    reader.read_exact(&mut payload)?;
    let text = String::from_utf8(payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    telemetry::json::parse(&text)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// The frame's `"type"` discriminator, if present.
#[must_use]
pub fn frame_type(value: &Value) -> Option<&str> {
    value.as_obj()?.get("type")?.as_str()
}

/// A string field of a frame object.
#[must_use]
pub fn frame_str<'a>(value: &'a Value, field: &str) -> Option<&'a str> {
    value.as_obj()?.get(field)?.as_str()
}

/// An unsigned integer field of a frame object.
#[must_use]
pub fn frame_u64(value: &Value, field: &str) -> Option<u64> {
    value.as_obj()?.get(field)?.as_u64()
}

/// Builds a `submit` frame.
#[must_use]
pub fn submit_frame(plan: &PlanSpec, priority: u64, stream: bool) -> Value {
    obj([
        ("type", Value::str("submit")),
        ("plan", plan.to_value()),
        ("priority", Value::u64(priority)),
        ("stream", Value::Bool(stream)),
    ])
}

/// Builds an `ack` frame for job `seq`.
#[must_use]
pub fn ack_frame(seq: u64) -> Value {
    obj([("type", Value::str("ack")), ("job", Value::u64(seq))])
}

/// Builds an `event` frame carrying one JSONL trace-event line.
#[must_use]
pub fn event_frame(line: &str) -> Value {
    obj([("type", Value::str("event")), ("line", Value::str(line))])
}

/// Builds the final `report` frame of a job.
#[must_use]
pub fn report_frame(seq: u64, tsv: &str, outcomes: &str) -> Value {
    obj([
        ("type", Value::str("report")),
        ("job", Value::u64(seq)),
        ("tsv", Value::str(tsv)),
        ("outcomes", Value::str(outcomes)),
    ])
}

/// Builds an `error` frame.
#[must_use]
pub fn error_frame(message: &str) -> Value {
    obj([
        ("type", Value::str("error")),
        ("message", Value::str(message)),
    ])
}

/// Builds a `ping` frame.
#[must_use]
pub fn ping_frame() -> Value {
    obj([("type", Value::str("ping"))])
}

/// Builds a `pong` frame.
#[must_use]
pub fn pong_frame() -> Value {
    obj([("type", Value::str("pong"))])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip_over_a_byte_stream() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &ping_frame()).unwrap();
        write_frame(&mut wire, &submit_frame(&PlanSpec::default(), 3, true)).unwrap();
        write_frame(&mut wire, &report_frame(7, "a\tb\n", "8 ok")).unwrap();

        let mut reader = Cursor::new(wire);
        let ping = read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(frame_type(&ping), Some("ping"));

        let submit = read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(frame_type(&submit), Some("submit"));
        assert_eq!(frame_u64(&submit, "priority"), Some(3));
        let plan = submit.as_obj().unwrap().get("plan").unwrap();
        assert_eq!(PlanSpec::from_value(plan).unwrap(), PlanSpec::default());

        let report = read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(frame_u64(&report, "job"), Some(7));
        assert_eq!(frame_str(&report, "tsv"), Some("a\tb\n"));

        // Clean EOF at the boundary.
        assert!(read_frame(&mut reader).unwrap().is_none());
    }

    #[test]
    fn truncated_and_oversized_frames_are_errors() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &pong_frame()).unwrap();
        wire.truncate(wire.len() - 2);
        let mut reader = Cursor::new(wire);
        assert!(read_frame(&mut reader).is_err());

        let huge = (MAX_FRAME_BYTES as u32 + 1).to_le_bytes();
        let mut reader = Cursor::new(huge.to_vec());
        let err = read_frame(&mut reader).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
