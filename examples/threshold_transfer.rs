//! Threshold-transfer experiment (Section 4.5 of the paper): train the agent
//! on the rare nets of a loose threshold (0.14) and evaluate the generated
//! patterns against triggers built from the tight threshold (0.10).
//!
//! Both thresholds are session cells over one shared artifact store. With
//! the split analyze stage the expensive Monte-Carlo estimation runs **once**
//! for the pair — the estimate artifact is keyed without θ — and each θ only
//! pays a cheap re-thresholding of the shared probabilities. The tight-θ
//! cell never trains; its analysis exists only to source the adversary's
//! triggers.
//!
//! ```text
//! cargo run --example threshold_transfer
//! ```

use deterrent_repro::deterrent_core::{ArtifactStore, DeterrentConfig, DeterrentSession};
use deterrent_repro::netlist::synth::BenchmarkProfile;
use deterrent_repro::trojan::{CoverageEvaluator, TrojanGenerator};

fn main() {
    let netlist = BenchmarkProfile::c6288().scaled(25).generate(5);
    let mut base = DeterrentConfig::fast_preset()
        .with_probability_patterns(8192)
        .with_seed(3);
    if let Some(dir) = deterrent_repro::cache_dir_arg() {
        base = base.with_cache_dir(dir);
    }
    // `--cache-dir DIR` (or DETERRENT_CACHE_DIR) makes the shared store
    // persistent: a second run serves the estimate and both θ-analyses
    // from disk.
    let store = match base.resolved_cache_dir() {
        Some(dir) => ArtifactStore::with_disk(dir),
        None => ArtifactStore::new(),
    };

    // One estimation for the pair, one cheap thresholding per θ — the
    // session cache does the sharing; nothing here is hand-rolled.
    let mut loose_session =
        DeterrentSession::with_store(&netlist, base.clone().with_threshold(0.14), store.clone());
    let loose = loose_session.analyze();
    let mut tight_session =
        DeterrentSession::with_store(&netlist, base.with_threshold(0.10), store.clone());
    let tight = tight_session.analyze();
    println!(
        "design {}: {} rare nets at threshold 0.14, {} at 0.10",
        netlist.name(),
        loose.len(),
        tight.len()
    );

    // Train on the larger (loose-threshold) action space only.
    let result = loose_session.run_from(&loose);
    println!(
        "trained on 0.14: {} patterns, largest compatible set {}",
        result.test_length(),
        result.metrics.max_compatible_set
    );
    let counters = store.counters();
    assert_eq!(
        counters.estimate.misses + counters.estimate.disk_hits,
        1,
        "both θ cells share one Monte-Carlo estimation (computed cold, loaded from disk warm)"
    );
    assert_eq!(
        counters.analyze.misses + counters.analyze.disk_hits,
        2,
        "exactly one (cheap) thresholding per θ"
    );
    assert_eq!(
        counters.build_graph.misses + counters.build_graph.disk_hits,
        1,
        "only the trained θ ever built a graph"
    );

    // Evaluate against Trojans whose triggers use only tight-threshold nets.
    let mut adversary = TrojanGenerator::new(&netlist, 99);
    let trojans = adversary.sample_many(tight.analysis(), 2, 40);
    if trojans.is_empty() {
        println!("no satisfiable tight-threshold triggers at this scale; rerun with another seed");
        return;
    }
    let coverage = CoverageEvaluator::new(&netlist, trojans)
        .evaluate(&result.patterns)
        .coverage_percent();
    println!(
        "coverage of threshold-0.10 triggers using threshold-0.14 training: {coverage:.1}% \
         (paper reports 99%)"
    );
}
