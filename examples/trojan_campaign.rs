//! Trojan detection campaign: plant a population of randomly inserted,
//! SAT-validated hardware Trojans and measure how many are exposed by
//! DETERRENT patterns compared to an equal budget of random patterns.
//!
//! The defender's analysis artifact doubles as the adversary's rare-net
//! source — one estimation run serves both sides through the session store.
//!
//! ```text
//! cargo run --example trojan_campaign
//! ```

use deterrent_repro::baselines::{RandomPatterns, TestGenerator};
use deterrent_repro::deterrent_core::{DeterrentConfig, DeterrentSession};
use deterrent_repro::netlist::synth::BenchmarkProfile;
use deterrent_repro::trojan::{CoverageEvaluator, TrojanGenerator};

fn main() {
    let netlist = BenchmarkProfile::c5315().scaled(25).generate(9);
    // `--cache-dir DIR` (or DETERRENT_CACHE_DIR) persists the artifacts so a
    // second campaign run skips estimation and training entirely.
    let mut config = DeterrentConfig::fast_preset()
        .with_threshold(0.15)
        .with_probability_patterns(8192)
        .with_seed(2);
    if let Some(dir) = deterrent_repro::cache_dir_arg() {
        config = config.with_cache_dir(dir);
    }
    let mut session = DeterrentSession::new(&netlist, config);
    let rare = session.analyze();
    println!(
        "design {}: {} gates, {} rare nets at threshold 0.15",
        netlist.name(),
        netlist.num_logic_gates(),
        rare.len()
    );

    // Adversary: plant 40 two-net-trigger Trojans (each validated by SAT).
    let mut adversary = TrojanGenerator::new(&netlist, 1337);
    let trojans = adversary.sample_many(rare.analysis(), 2, 40);
    println!("adversary planted {} valid Trojans", trojans.len());
    let evaluator = CoverageEvaluator::new(&netlist, trojans);

    // Defender A: DETERRENT (stages ❷–❺ on the already-analyzed artifact).
    let deterrent = session.run_from(&rare);
    let deterrent_report = evaluator.evaluate(&deterrent.patterns);

    // Defender B: the same number of random patterns.
    let random =
        RandomPatterns::new(deterrent.test_length().max(1), 7).generate(&netlist, rare.analysis());
    let random_report = evaluator.evaluate(&random);

    println!(
        "DETERRENT : {:>3} patterns -> {:>5.1}% trigger coverage",
        deterrent_report.test_length,
        deterrent_report.coverage_percent()
    );
    println!(
        "Random    : {:>3} patterns -> {:>5.1}% trigger coverage",
        random_report.test_length,
        random_report.coverage_percent()
    );
    println!(
        "At an equal pattern budget the RL-guided patterns expose {}x as many Trojans.",
        if random_report.detected == 0 {
            deterrent_report.detected as f64
        } else {
            deterrent_report.detected as f64 / random_report.detected as f64
        }
    );
}
