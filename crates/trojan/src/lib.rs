//! Hardware Trojan modelling, insertion, and trigger-coverage evaluation.
//!
//! A hardware Trojan (HT) in this threat model consists of a *trigger* — a
//! conjunction of rare nets at their rare values — and a *payload* that
//! corrupts an output when the trigger fires. The defender never sees the
//! Trojans; they are only used to *evaluate* test-pattern sets, exactly as in
//! the paper's experimental setup: "we randomly inserted 100 HTs in each
//! benchmark and verified them to be valid using a Boolean satisfiability
//! check".
//!
//! * [`Trojan`] — a trigger (set of `(net, value)` conditions) plus payload
//!   target.
//! * [`TrojanGenerator`] — random sampling of SAT-validated Trojans from the
//!   rare nets of a design.
//! * [`infect`] — builds the HT-infected netlist (trigger AND-tree + XOR
//!   payload) for side-by-side simulation.
//! * [`CoverageEvaluator`] / [`CoverageReport`] — computes trigger coverage
//!   of a pattern set, the headline metric of every table and figure.
//!
//! # Example
//!
//! Plant SAT-validated Trojans on a design's rare nets, then score a
//! pattern set by how many triggers it fires:
//!
//! ```
//! use sim::rare::RareNetAnalysis;
//! use trojan::{CoverageEvaluator, TrojanGenerator};
//!
//! let nl = netlist::synth::BenchmarkProfile::c2670().scaled(15).generate(21);
//! let analysis = RareNetAnalysis::estimate(&nl, 0.15, 4096, 5);
//! let trojans = TrojanGenerator::new(&nl, 1).sample_many(&analysis, 2, 5);
//! assert!(!trojans.is_empty());
//!
//! let patterns = vec![sim::TestPattern::ones(nl.num_scan_inputs())];
//! let report = CoverageEvaluator::new(&nl, trojans).evaluate(&patterns);
//! assert!((0.0..=100.0).contains(&report.coverage_percent()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coverage;
mod generator;
mod model;

pub use coverage::{CoverageEvaluator, CoverageReport};
pub use generator::TrojanGenerator;
pub use model::{infect, Trojan};
