//! Task and timing counters of an [`crate::Exec`] runtime.

use std::sync::atomic::{AtomicU64, Ordering};

/// Snapshot of the work an [`crate::Exec`] has performed so far.
///
/// `busy_nanos` sums the wall time of every worker chunk, while `wall_nanos`
/// sums the wall time of the parallel calls themselves — their ratio is the
/// realized parallel speedup over a hypothetical serial execution of the
/// same chunks (1.0 on one thread, approaching the thread count under
/// perfect scaling).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Number of parallel calls (`par_ranges` / `par_map` / …) issued.
    pub calls: u64,
    /// Total tasks (item or index units) processed across all calls.
    pub tasks: u64,
    /// Summed wall time of all worker chunks, in nanoseconds.
    pub busy_nanos: u64,
    /// Summed wall time of the parallel calls, in nanoseconds.
    pub wall_nanos: u64,
    /// Panics contained by the isolated combinators (converted into
    /// [`crate::TaskError`] values instead of unwinding the caller).
    pub panics_caught: u64,
    /// Tasks skipped because a [`crate::CancelToken`] fired before they
    /// started.
    pub tasks_cancelled: u64,
}

impl ExecStats {
    /// Realized speedup: worker-busy time divided by call wall time.
    ///
    /// Returns 1.0 when nothing has run yet.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 1.0;
        }
        self.busy_nanos as f64 / self.wall_nanos as f64
    }
}

/// Interior-mutable accumulator behind `&Exec`.
#[derive(Debug, Default)]
pub(crate) struct StatsCell {
    calls: AtomicU64,
    tasks: AtomicU64,
    busy_nanos: AtomicU64,
    wall_nanos: AtomicU64,
    panics_caught: AtomicU64,
    tasks_cancelled: AtomicU64,
}

impl StatsCell {
    pub(crate) fn record_call(&self, tasks: u64, wall_nanos: u64) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.tasks.fetch_add(tasks, Ordering::Relaxed);
        self.wall_nanos.fetch_add(wall_nanos, Ordering::Relaxed);
    }

    pub(crate) fn record_busy(&self, busy_nanos: u64) {
        self.busy_nanos.fetch_add(busy_nanos, Ordering::Relaxed);
    }

    pub(crate) fn record_panic_caught(&self) {
        self.panics_caught.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_task_cancelled(&self) {
        self.tasks_cancelled.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> ExecStats {
        ExecStats {
            calls: self.calls.load(Ordering::Relaxed),
            tasks: self.tasks.load(Ordering::Relaxed),
            busy_nanos: self.busy_nanos.load(Ordering::Relaxed),
            wall_nanos: self.wall_nanos.load(Ordering::Relaxed),
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
            tasks_cancelled: self.tasks_cancelled.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn reset(&self) {
        self.calls.store(0, Ordering::Relaxed);
        self.tasks.store(0, Ordering::Relaxed);
        self.busy_nanos.store(0, Ordering::Relaxed);
        self.wall_nanos.store(0, Ordering::Relaxed);
        self.panics_caught.store(0, Ordering::Relaxed);
        self.tasks_cancelled.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_of_empty_stats_is_one() {
        assert_eq!(ExecStats::default().speedup(), 1.0);
    }

    #[test]
    fn cell_accumulates_and_resets() {
        let cell = StatsCell::default();
        cell.record_call(10, 100);
        cell.record_busy(300);
        let s = cell.snapshot();
        assert_eq!(s.calls, 1);
        assert_eq!(s.tasks, 10);
        assert_eq!(s.wall_nanos, 100);
        assert_eq!(s.busy_nanos, 300);
        assert!((s.speedup() - 3.0).abs() < 1e-12);
        cell.reset();
        assert_eq!(cell.snapshot(), ExecStats::default());
    }
}
