//! Reading and writing DIMACS CNF.

use std::error::Error;
use std::fmt;

use crate::types::{Cnf, Lit};

/// Error produced while parsing DIMACS text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dimacs parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseDimacsError {}

/// Parses DIMACS CNF text into a [`Cnf`].
///
/// The `p cnf <vars> <clauses>` header is optional; comment lines start with
/// `c`. Clauses may span lines and are terminated by `0`.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] when a token is not an integer.
pub fn parse(src: &str) -> Result<Cnf, ParseDimacsError> {
    let mut cnf = Cnf::new();
    let mut current: Vec<Lit> = Vec::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('p') {
            continue;
        }
        for tok in line.split_whitespace() {
            let value: i64 = tok.parse().map_err(|_| ParseDimacsError {
                line: lineno + 1,
                message: format!("invalid literal `{tok}`"),
            })?;
            if value == 0 {
                cnf.add_clause(current.drain(..));
            } else {
                current.push(Lit::from_dimacs(value));
            }
        }
    }
    if !current.is_empty() {
        cnf.add_clause(current);
    }
    Ok(cnf)
}

/// Serializes a [`Cnf`] to DIMACS text.
#[must_use]
pub fn write(cnf: &Cnf) -> String {
    let mut out = format!("p cnf {} {}\n", cnf.num_vars(), cnf.num_clauses());
    for clause in cnf.clauses() {
        for lit in clause {
            out.push_str(&lit.to_dimacs().to_string());
            out.push(' ');
        }
        out.push_str("0\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Var;

    #[test]
    fn parse_simple() {
        let cnf = parse("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.clauses()[0], vec![Var(0).positive(), Var(1).negative()]);
    }

    #[test]
    fn round_trip() {
        let mut cnf = Cnf::new();
        cnf.add_clause([Var(0).positive(), Var(2).negative()]);
        cnf.add_clause([Var(1).negative()]);
        let text = write(&cnf);
        let back = parse(&text).unwrap();
        assert_eq!(back.clauses(), cnf.clauses());
    }

    #[test]
    fn bad_token_is_error() {
        let err = parse("1 two 0\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("two"));
    }

    #[test]
    fn clause_spanning_lines() {
        let cnf = parse("1 2\n3 0\n").unwrap();
        assert_eq!(cnf.num_clauses(), 1);
        assert_eq!(cnf.clauses()[0].len(), 3);
    }
}
