//! Tier-breakdown and parallel-speedup report of the simulation-first
//! compatibility funnel.
//!
//! Builds the pairwise-compatibility graph of a scaled benchmark profile
//! twice — once with the paper's all-SAT offline phase and once with the
//! three-tier funnel — verifies the adjacency matrices are bit-identical,
//! and reports how each tier resolved the pairs plus the reduction in
//! pairwise SAT queries. The offline phase (probability estimation, witness
//! harvest, funnel tiers) is additionally timed at one thread and at
//! `--threads` workers; the deterministic exec runtime guarantees both runs
//! produce the identical graph, so the ratio is a pure wall-clock speedup.
//!
//! Usage: `funnel [--scale N] [--seed N] [--theta F] [--patterns N]
//! [--threads N] [--limit K] [--min-speedup F] [--cache-dir DIR]
//! [--solver modern|legacy] [--expect-reduction] [--max-decision-regression P]
//! [--cap-min N]`
//! (defaults match the
//! acceptance profile: c2670 at scale 20, θ = 0.2, and the paper's 100k
//! random-pattern budget). The enumeration tier defaults to the self-tuning
//! per-pair cost model; `--limit K` overrides it with the legacy fixed
//! support cutoff (`--limit 0` disables enumeration). `--threads 0` resolves
//! via `DETERRENT_THREADS`/available cores. A non-zero `--min-speedup` turns
//! the speedup report into a gate, skipped when the host has fewer cores
//! than workers (a 1-core box cannot exhibit wall-clock speedup).
//! `--cache-dir DIR` persists the (untimed) all-SAT reference graph in the
//! artifact cache at DIR, so repeat invocations skip the most expensive
//! untimed step; the timed funnel phases always recompute — they are the
//! measurement.
//!
//! `--solver legacy` selects the pre-deletion CDCL configuration (geometric
//! restarts, no learned-clause deletion) for differential comparisons.
//! `--expect-reduction` gates on the learned-clause database actually being
//! reduced at least once (and staying bounded below the total learned).
//! `--max-decision-regression P` rebuilds the funnel with the legacy solver
//! and fails if the modern configuration spends more than P% extra SAT
//! decisions. `--cap-min N` forces the learned-clause cap floor to N (and
//! drops the `originals / 3` term), so reductions demonstrably fire even on
//! small instances that learn few clauses.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use deterrent_core::{
    ArtifactStore, CompatBuildOptions, CompatStrategy, CompatibilityGraph, DeterrentConfig,
    DeterrentSession, EnumerationBudget, FunnelOptions,
};
use exec::Exec;
use netlist::synth::BenchmarkProfile;
use netlist::Netlist;
use sat::SolverConfig;
use sim::rare::RareNetAnalysis;

struct Args {
    scale: usize,
    seed: u64,
    theta: f64,
    patterns: usize,
    threads: usize,
    /// `None` = adaptive cost model; `Some(k)` = legacy fixed support limit.
    limit: Option<u32>,
    min_speedup: f64,
    /// Persistent artifact-cache directory for the all-SAT reference graph.
    cache_dir: Option<PathBuf>,
    /// `true` selects the pre-deletion solver (geometric restarts, no
    /// learned-clause deletion).
    solver_legacy: bool,
    /// Gate: the learned-clause database must have been reduced ≥ 1 time.
    expect_reduction: bool,
    /// Gate: max % of extra SAT decisions vs. the legacy solver (0 = off).
    max_decision_regression: f64,
    /// Override of the solver's learned-clause cap floor. Also drops the
    /// MiniSat-style `originals / 3` term so the override actually binds on
    /// small instances (where few clauses are ever learned).
    cap_min: Option<u64>,
}

impl Args {
    fn enumeration(&self) -> EnumerationBudget {
        match self.limit {
            None => EnumerationBudget::self_tuning(),
            Some(0) => EnumerationBudget::Disabled,
            Some(k) => EnumerationBudget::FixedSupportLimit(k),
        }
    }

    fn solver(&self) -> SolverConfig {
        let mut config = if self.solver_legacy {
            SolverConfig::legacy()
        } else {
            SolverConfig::default()
        };
        if let Some(cap) = self.cap_min {
            config.learnt_cap_min = cap;
            config.learnt_cap_origin_divisor = 0;
        }
        config
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 20,
        seed: 3,
        theta: 0.2,
        patterns: 100_000,
        threads: 1,
        limit: None,
        min_speedup: 0.0,
        cache_dir: None,
        solver_legacy: false,
        expect_reduction: false,
        max_decision_regression: 0.0,
        cap_min: None,
    };
    // A typo here would otherwise run the acceptance gate on the default
    // configuration while claiming the requested one, so parse strictly.
    fn parse_or_die<T: std::str::FromStr>(flag: &str, v: &str) -> T {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: invalid value {v:?} for {flag}");
            std::process::exit(2);
        })
    }
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        let value = argv.get(i + 1);
        match (argv[i].as_str(), value) {
            ("--scale", Some(v)) => args.scale = parse_or_die("--scale", v),
            ("--seed", Some(v)) => args.seed = parse_or_die("--seed", v),
            ("--theta", Some(v)) => args.theta = parse_or_die("--theta", v),
            ("--patterns", Some(v)) => args.patterns = parse_or_die("--patterns", v),
            ("--threads", Some(v)) => args.threads = parse_or_die("--threads", v),
            ("--limit", Some(v)) => args.limit = Some(parse_or_die("--limit", v)),
            ("--min-speedup", Some(v)) => args.min_speedup = parse_or_die("--min-speedup", v),
            ("--cache-dir", Some(v)) => args.cache_dir = Some(PathBuf::from(v)),
            ("--solver", Some(v)) => {
                args.solver_legacy = match v.as_str() {
                    "legacy" => true,
                    "modern" => false,
                    other => {
                        eprintln!("error: --solver must be 'modern' or 'legacy', got {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            ("--expect-reduction", _) => {
                args.expect_reduction = true;
                i += 1;
                continue;
            }
            ("--max-decision-regression", Some(v)) => {
                args.max_decision_regression = parse_or_die("--max-decision-regression", v);
            }
            ("--cap-min", Some(v)) => args.cap_min = Some(parse_or_die("--cap-min", v)),
            (flag, _) => {
                eprintln!(
                    "error: unknown or valueless flag {flag:?} (expected --scale/--seed/--theta/--patterns/--threads/--limit/--min-speedup/--cache-dir/--solver/--max-decision-regression/--cap-min <value> or --expect-reduction)"
                );
                std::process::exit(2);
            }
        }
        i += 2;
    }
    if !(args.theta > 0.0 && args.theta <= 0.5) {
        eprintln!("error: --theta must be in (0, 0.5], got {}", args.theta);
        std::process::exit(2);
    }
    if args.patterns == 0 {
        eprintln!("error: --patterns must be at least 1");
        std::process::exit(2);
    }
    args
}

/// One full offline phase — probability estimation + witness harvest +
/// funnel graph build — on `threads` workers.
fn offline_phase(
    netlist: &Netlist,
    args: &Args,
    threads: usize,
) -> (RareNetAnalysis, CompatibilityGraph, Duration) {
    let start = Instant::now();
    let exec = Exec::new(threads.max(1));
    let analysis =
        RareNetAnalysis::estimate_with(netlist, args.theta, args.patterns, args.seed, &exec);
    let graph = CompatibilityGraph::build_with(
        netlist,
        &analysis,
        &CompatBuildOptions {
            threads: threads.max(1),
            strategy: CompatStrategy::Funnel(FunnelOptions {
                enumeration: args.enumeration(),
                solver: args.solver(),
                ..FunnelOptions::default()
            }),
        },
    );
    (analysis, graph, start.elapsed())
}

/// Best-of-N wall clock of the offline phase, returning the last run's
/// outputs (all runs produce bit-identical results by construction).
fn timed_phase(
    netlist: &Netlist,
    args: &Args,
    threads: usize,
) -> (RareNetAnalysis, CompatibilityGraph, Duration) {
    const RUNS: usize = 3;
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..RUNS {
        let (analysis, graph, elapsed) = offline_phase(netlist, args, threads);
        best = best.min(elapsed);
        out = Some((analysis, graph));
    }
    let (analysis, graph) = out.expect("at least one run");
    (analysis, graph, best)
}

fn main() {
    let args = parse_args();
    let profile = if args.scale <= 1 {
        BenchmarkProfile::c2670()
    } else {
        BenchmarkProfile::c2670().scaled(args.scale)
    };
    let netlist = profile.generate(args.seed);
    let threads = Exec::new(args.threads).threads();
    println!(
        "design {}: {} gates ({} logic), {} scan inputs, {} worker thread(s)",
        netlist.name(),
        netlist.num_gates(),
        netlist.num_logic_gates(),
        netlist.num_scan_inputs(),
        threads,
    );
    match args.enumeration() {
        EnumerationBudget::SelfTuning { probe_pairs, .. } => {
            println!(
                "enumeration budget: self-tuning per-pair cost model, {probe_pairs} probes (default)"
            );
        }
        EnumerationBudget::Adaptive { .. } => {
            println!("enumeration budget: adaptive per-pair cost model");
        }
        EnumerationBudget::FixedSupportLimit(k) => {
            println!("enumeration budget: fixed support limit {k} (--limit override)");
        }
        EnumerationBudget::Disabled => println!("enumeration budget: disabled (--limit 0)"),
    }
    println!(
        "solver: {}",
        if args.solver_legacy {
            "legacy (geometric restarts, no clause deletion)"
        } else {
            "modern (Luby restarts, learned-clause deletion)"
        }
    );

    // ── Deterministic parallel speedup of the offline phase. ───────────────
    let (serial_analysis, serial_graph, serial_time) = timed_phase(&netlist, &args, 1);
    let (analysis, funnel, parallel_time) = if threads == 1 {
        // One thread is both the baseline and the measurement — don't pay
        // for the phase twice.
        (serial_analysis, serial_graph.clone(), serial_time)
    } else {
        timed_phase(&netlist, &args, threads)
    };
    assert_eq!(
        serial_graph.adjacency(),
        funnel.adjacency(),
        "exec runtime must be bit-identical at any thread count"
    );
    println!(
        "rare nets at θ = {}: {} ({} simulated patterns retained as witnesses)",
        args.theta,
        analysis.len(),
        analysis
            .witnesses()
            .map_or(0, sim::WitnessBank::num_patterns),
    );

    // ── All-SAT reference for the query-reduction gate. ────────────────────
    // With `--cache-dir` the reference goes through a disk-backed session
    // keyed by the analysis *content*, so a repeat invocation loads the
    // graph (and its SAT-query stats) instead of paying for the all-SAT
    // build again. The timed phases above always recompute — they are the
    // measurement, and caching them would measure the cache.
    let all_sat = if let Some(dir) = &args.cache_dir {
        let store = ArtifactStore::with_disk(dir.clone());
        let config = DeterrentConfig::default()
            .with_threads(threads)
            .with_strategy(CompatStrategy::AllSat);
        let mut session = DeterrentSession::with_store(&netlist, config, store.clone());
        let rare = session.import_analysis(analysis.clone());
        let artifact = session.build_graph(&rare);
        if store.counters().build_graph.disk_hits > 0 {
            eprintln!(
                "(all-SAT reference served from the persistent cache at {})",
                dir.display()
            );
        }
        artifact.graph().clone()
    } else {
        CompatibilityGraph::build_with(
            &netlist,
            &analysis,
            &CompatBuildOptions {
                threads,
                strategy: CompatStrategy::AllSat,
            },
        )
    };

    assert_eq!(
        funnel.adjacency(),
        all_sat.adjacency(),
        "funnel adjacency must be bit-identical to the all-SAT result"
    );
    println!("\nadjacency matrices are bit-identical ✓ (all-SAT, funnel ×1, funnel ×{threads})");

    let fs = funnel.stats();
    let along = all_sat.stats();
    println!(
        "\n{:<34} {:>12} {:>12}",
        "offline phase", "all-SAT", "funnel"
    );
    println!(
        "{:<34} {:>12} {:>12}",
        "kept rare nets", along.kept_rare_nets, fs.kept_rare_nets
    );
    println!(
        "{:<34} {:>12} {:>12}",
        "pairs total", along.pairs_total, fs.pairs_total
    );
    println!(
        "{:<34} {:>12} {:>12}",
        "  tier 1: sim-witnessed", along.pairs_sim_witnessed, fs.pairs_sim_witnessed
    );
    println!(
        "{:<34} {:>12} {:>12}",
        "  tier 2: structurally pruned",
        along.pairs_structurally_pruned,
        fs.pairs_structurally_pruned
    );
    println!(
        "{:<34} {:>12} {:>12}",
        "  tier 2: cone-enumerated", along.pairs_cone_enumerated, fs.pairs_cone_enumerated
    );
    println!(
        "{:<34} {:>12} {:>12}",
        "  tier 3: SAT-resolved", along.pairs_sat_resolved, fs.pairs_sat_resolved
    );
    println!(
        "{:<34} {:>12} {:>12}",
        "singleton SAT queries", along.singleton_sat_queries, fs.singleton_sat_queries
    );
    println!(
        "{:<34} {:>12} {:>12}",
        "total SAT queries",
        along.total_sat_queries(),
        fs.total_sat_queries()
    );
    // Both sides measured the same way: the pairwise-tier wall clock of one
    // graph build (the funnel's probability estimation is shared setup, not
    // part of this comparison).
    println!(
        "{:<34} {:>12.1?} {:>12.1?}",
        "pairwise tiers wall clock",
        Duration::from_nanos(along.tier_nanos_total()),
        Duration::from_nanos(fs.tier_nanos_total()),
    );
    println!(
        "\nfunnel tier wall clock (×{threads}): tier1 {:?}, tier2 {:?}, tier3 {:?}",
        Duration::from_nanos(fs.tier1_nanos),
        Duration::from_nanos(fs.tier2_nanos),
        Duration::from_nanos(fs.tier3_nanos),
    );

    let pairwise_reduction = if fs.pairwise_sat_queries() == 0 {
        f64::INFINITY
    } else {
        along.pairwise_sat_queries() as f64 / fs.pairwise_sat_queries() as f64
    };
    println!(
        "\npairwise SAT queries: {} -> {} ({pairwise_reduction:.1}x reduction, {:.1}% of pairs SAT-free)",
        along.pairwise_sat_queries(),
        fs.pairwise_sat_queries(),
        100.0 * fs.sat_free_pair_fraction()
    );

    let speedup = serial_time.as_secs_f64() / parallel_time.as_secs_f64().max(1e-12);
    println!(
        "offline phase wall clock: {serial_time:.1?} (1 thread) -> {parallel_time:.1?} ({threads} thread(s)): {speedup:.2}x speedup"
    );

    // ── SAT-core internals of the funnel build (greppable one-liners). ─────
    let sv = fs.solver;
    println!(
        "\nsolver counters: decisions={} conflicts={} propagations={} restarts={}",
        sv.decisions, sv.conflicts, sv.propagations, sv.restarts
    );
    println!(
        "learned clauses: learned={} deleted={} reduces={} peak_live={}",
        sv.learned_clauses, sv.deleted_clauses, sv.reduces, sv.peak_learnts
    );
    if fs.budget_self_tuned {
        println!(
            "budget self-tuned: base={} per_gate={} word ops from {} probe(s)",
            fs.budget_sat_base_word_ops, fs.budget_sat_per_gate_word_ops, fs.budget_probe_queries
        );
    }

    let mut failed = false;
    if args.expect_reduction {
        // "Bounded" means deletion actually held the live learned set below
        // the total ever learned — not merely that the reducer ran.
        if sv.reduces >= 1 && sv.deleted_clauses >= 1 && sv.peak_learnts < sv.learned_clauses {
            println!(
                "acceptance: learned-clause DB reduced {}x, peak {} of {} learned ✓",
                sv.reduces, sv.peak_learnts, sv.learned_clauses
            );
        } else {
            println!(
                "acceptance: FAILED — expected learned-clause reduction (reduces={} deleted={} peak={} learned={})",
                sv.reduces, sv.deleted_clauses, sv.peak_learnts, sv.learned_clauses
            );
            failed = true;
        }
    }
    if args.max_decision_regression > 0.0 {
        let legacy_args = Args {
            scale: args.scale,
            seed: args.seed,
            theta: args.theta,
            patterns: args.patterns,
            threads: args.threads,
            limit: args.limit,
            min_speedup: 0.0,
            cache_dir: None,
            solver_legacy: true,
            expect_reduction: false,
            max_decision_regression: 0.0,
            cap_min: None,
        };
        let (_, legacy_graph, _) = offline_phase(&netlist, &legacy_args, threads);
        assert_eq!(
            legacy_graph.adjacency(),
            funnel.adjacency(),
            "legacy-solver funnel must produce the identical adjacency"
        );
        let legacy_decisions = legacy_graph.stats().solver.decisions;
        let ceiling = legacy_decisions as f64 * (1.0 + args.max_decision_regression / 100.0);
        println!(
            "decision comparison: modern={} legacy={} (ceiling {:.0})",
            sv.decisions, legacy_decisions, ceiling
        );
        if (sv.decisions as f64) <= ceiling {
            println!(
                "acceptance: SAT decisions within {:.0}% of the legacy solver ✓",
                args.max_decision_regression
            );
        } else {
            println!(
                "acceptance: FAILED — modern solver spends {:.1}% more decisions than legacy",
                100.0 * (sv.decisions as f64 / legacy_decisions.max(1) as f64 - 1.0)
            );
            failed = true;
        }
    }
    if pairwise_reduction >= 5.0 {
        println!("acceptance: ≥5x pairwise SAT reduction ✓");
    } else {
        println!("acceptance: FAILED — reduction below 5x");
        failed = true;
    }
    if args.min_speedup > 0.0 {
        let host_cores =
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        if host_cores < threads {
            // A wall-clock speedup cannot exceed the host's core count; on a
            // box with fewer cores than requested workers the gate would
            // measure the scheduler, not the runtime. Determinism is still
            // asserted above either way.
            println!(
                "acceptance: speedup gate skipped — host exposes {host_cores} core(s) for {threads} requested worker(s)"
            );
        } else if speedup >= args.min_speedup {
            println!(
                "acceptance: ≥{:.1}x offline-phase speedup at {threads} threads ✓",
                args.min_speedup
            );
        } else {
            println!(
                "acceptance: FAILED — speedup {speedup:.2}x below {:.1}x",
                args.min_speedup
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
