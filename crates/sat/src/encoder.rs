//! Tseitin encoding of gate-level netlists into CNF.

use netlist::{GateKind, NetId, Netlist};

use crate::types::{Cnf, Lit, Var};

/// Tseitin encoder mapping every net of a [`Netlist`] to a CNF variable.
///
/// Primary inputs and scan flip-flop outputs are free variables; every
/// combinational gate contributes the standard Tseitin clauses relating its
/// output variable to its fanin variables. Flip-flop *data* inputs impose no
/// constraint on the flop output (full-scan semantics: the flop can be loaded
/// with any value through the scan chain).
#[derive(Debug, Clone)]
pub struct CircuitEncoder {
    cnf: Cnf,
    net_vars: Vec<Var>,
}

impl CircuitEncoder {
    /// Encodes `netlist` into CNF.
    #[must_use]
    pub fn new(netlist: &Netlist) -> Self {
        let n = netlist.num_gates();
        let mut cnf = Cnf::with_vars(n);
        // One variable per net, with matching indices for easy lookup.
        let net_vars: Vec<Var> = (0..n).map(|i| Var(i as u32)).collect();

        let mut aux_counter = n;
        let mut fresh = || {
            let v = Var(aux_counter as u32);
            aux_counter += 1;
            v
        };

        for (id, gate) in netlist.iter() {
            let y = net_vars[id.index()];
            let fanin: Vec<Var> = gate.fanin.iter().map(|f| net_vars[f.index()]).collect();
            match gate.kind {
                GateKind::Input | GateKind::Dff => {}
                GateKind::Const0 => cnf.add_clause([y.negative()]),
                GateKind::Const1 => cnf.add_clause([y.positive()]),
                GateKind::Buf => encode_equal(&mut cnf, y, fanin[0], false),
                GateKind::Not => encode_equal(&mut cnf, y, fanin[0], true),
                GateKind::And => encode_and(&mut cnf, y, &fanin, false),
                GateKind::Nand => encode_and(&mut cnf, y, &fanin, true),
                GateKind::Or => encode_or(&mut cnf, y, &fanin, false),
                GateKind::Nor => encode_or(&mut cnf, y, &fanin, true),
                GateKind::Xor => encode_xor(&mut cnf, y, &fanin, false, &mut fresh),
                GateKind::Xnor => encode_xor(&mut cnf, y, &fanin, true, &mut fresh),
            }
        }

        Self { cnf, net_vars }
    }

    /// The CNF variable representing `net`.
    ///
    /// # Panics
    ///
    /// Panics if `net` does not belong to the encoded netlist.
    #[must_use]
    pub fn var(&self, net: NetId) -> Var {
        self.net_vars[net.index()]
    }

    /// The literal asserting that `net` carries `value`.
    ///
    /// # Panics
    ///
    /// Panics if `net` does not belong to the encoded netlist.
    #[must_use]
    pub fn lit(&self, net: NetId, value: bool) -> Lit {
        self.var(net).lit(value)
    }

    /// The encoded formula.
    #[must_use]
    pub fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    /// Consumes the encoder and returns the formula.
    #[must_use]
    pub fn into_cnf(self) -> Cnf {
        self.cnf
    }
}

fn encode_equal(cnf: &mut Cnf, y: Var, a: Var, invert: bool) {
    // y == a (or y == ¬a when invert).
    cnf.add_clause([y.negative(), a.lit(!invert)]);
    cnf.add_clause([y.positive(), a.lit(invert)]);
}

fn encode_and(cnf: &mut Cnf, y: Var, fanin: &[Var], invert: bool) {
    // z = AND(fanin); y = z or ¬z depending on invert.
    // (¬z ∨ a_i) for each i, and (z ∨ ¬a_1 ∨ … ∨ ¬a_k).
    let y_pos = y.lit(!invert); // literal that is true when z is true
    let y_neg = y.lit(invert);
    for &a in fanin {
        cnf.add_clause([y_neg, a.positive()]);
    }
    let mut long: Vec<Lit> = vec![y_pos];
    long.extend(fanin.iter().map(|a| a.negative()));
    cnf.add_clause(long);
}

fn encode_or(cnf: &mut Cnf, y: Var, fanin: &[Var], invert: bool) {
    // z = OR(fanin); y = z or ¬z depending on invert.
    let y_pos = y.lit(!invert);
    let y_neg = y.lit(invert);
    for &a in fanin {
        cnf.add_clause([y_pos, a.negative()]);
    }
    let mut long: Vec<Lit> = vec![y_neg];
    long.extend(fanin.iter().map(|a| a.positive()));
    cnf.add_clause(long);
}

fn encode_xor2(cnf: &mut Cnf, y: Var, a: Var, b: Var) {
    // y = a ⊕ b.
    cnf.add_clause([y.negative(), a.positive(), b.positive()]);
    cnf.add_clause([y.negative(), a.negative(), b.negative()]);
    cnf.add_clause([y.positive(), a.negative(), b.positive()]);
    cnf.add_clause([y.positive(), a.positive(), b.negative()]);
}

fn encode_xor(
    cnf: &mut Cnf,
    y: Var,
    fanin: &[Var],
    invert: bool,
    fresh: &mut impl FnMut() -> Var,
) {
    match fanin.len() {
        0 => cnf.add_clause([y.lit(invert)]),
        1 => encode_equal(cnf, y, fanin[0], invert),
        _ => {
            // Chain: acc = a0 ⊕ a1 ⊕ … with fresh intermediates, then tie the
            // final accumulator to y (inverted for XNOR).
            let mut acc = fanin[0];
            for (i, &next) in fanin.iter().enumerate().skip(1) {
                let out = if i == fanin.len() - 1 && !invert {
                    y
                } else {
                    fresh()
                };
                encode_xor2(cnf, out, acc, next);
                acc = out;
            }
            if invert {
                encode_equal(cnf, y, acc, true);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Solver;
    use netlist::samples;
    use netlist::synth::BenchmarkProfile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sim::{Simulator, TestPattern};

    /// For every gate kind and a set of random patterns, the CNF must be
    /// satisfiable exactly when the circuit produces the asserted values.
    #[test]
    fn encoding_agrees_with_simulation() {
        let designs = vec![
            samples::c17(),
            samples::majority5(),
            samples::adder4(),
            samples::scan_counter3(),
            BenchmarkProfile::c2670().scaled(25).generate(2),
        ];
        let mut rng = StdRng::seed_from_u64(11);
        for nl in designs {
            let enc = CircuitEncoder::new(&nl);
            let sim = Simulator::new(&nl);
            let scan = nl.scan_inputs();
            for _ in 0..10 {
                let pattern = TestPattern::random(scan.len(), &mut rng);
                let values = sim.run(&pattern);
                let mut solver = Solver::from_cnf(enc.cnf());
                // Assume the scan inputs take the pattern's values; every net
                // must then be forced to its simulated value.
                let assumptions: Vec<Lit> = scan
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| enc.lit(s, pattern.bit(i)))
                    .collect();
                let result = solver.solve(&assumptions);
                let model = result.model().expect("consistent assignment is SAT");
                for (id, gate) in nl.iter() {
                    if matches!(gate.kind, netlist::GateKind::Dff) {
                        continue;
                    }
                    assert_eq!(
                        model[enc.var(id).index()],
                        values.value(id),
                        "{}: net {} under {pattern}",
                        nl.name(),
                        nl.net_name(id)
                    );
                }
            }
        }
    }

    #[test]
    fn contradictory_targets_are_unsat() {
        let nl = samples::c17();
        let enc = CircuitEncoder::new(&nl);
        let mut solver = Solver::from_cnf(enc.cnf());
        let g10 = nl.net_by_name("G10").unwrap();
        // G10 = NAND(G1, G3): G10=0 requires G1=1 and G3=1, so asserting
        // G10=0 together with G1=0 is UNSAT.
        let g1 = nl.net_by_name("G1").unwrap();
        let res = solver.solve(&[enc.lit(g10, false), enc.lit(g1, false)]);
        assert!(!res.is_sat());
    }

    #[test]
    fn xor_chain_encoding_has_aux_vars() {
        let nl = samples::adder4();
        let enc = CircuitEncoder::new(&nl);
        assert!(enc.cnf().num_vars() >= nl.num_gates());
    }

    #[test]
    fn var_mapping_is_dense_prefix() {
        let nl = samples::c17();
        let enc = CircuitEncoder::new(&nl);
        for (id, _) in nl.iter() {
            assert_eq!(enc.var(id).index(), id.index());
        }
    }
}
