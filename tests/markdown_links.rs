//! Markdown link checker over the repo's documentation set.
//!
//! CI runs this as its link gate: every relative link in the top-level
//! Markdown files must point at a file (or directory) that exists, and
//! every same-file `#anchor` must match a heading. External `http(s)`
//! links are not fetched — the build environment is offline by design —
//! only structurally validated.

use std::fs;
use std::path::Path;

// The hand-maintained documentation set. PAPERS.md and SNIPPETS.md are
// machine-retrieved reference dumps and are deliberately not linted.
const DOCS: [&str; 5] = [
    "README.md",
    "ARCHITECTURE.md",
    "ROADMAP.md",
    "CHANGES.md",
    "PAPER.md",
];

/// Extracts inline Markdown link targets `[text](target)` outside fenced
/// code blocks. Good enough for this repo's hand-written docs; images
/// (`![`) count too.
fn link_targets(markdown: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
                if let Some(end) = line[i + 2..].find(')') {
                    let target = &line[i + 2..i + 2 + end];
                    targets.push(target.split_whitespace().next().unwrap_or("").to_string());
                    i += 2 + end;
                    continue;
                }
            }
            i += 1;
        }
    }
    targets
}

/// GitHub-style heading slug: lowercase, alphanumerics kept, spaces to
/// dashes, everything else dropped.
fn slug(heading: &str) -> String {
    heading
        .trim()
        .trim_start_matches('#')
        .trim()
        .chars()
        .filter_map(|c| {
            if c.is_alphanumeric() {
                Some(c.to_ascii_lowercase())
            } else if c == ' ' || c == '-' {
                Some('-')
            } else {
                None
            }
        })
        .collect()
}

fn heading_slugs(markdown: &str) -> Vec<String> {
    let mut in_fence = false;
    markdown
        .lines()
        .filter(|line| {
            if line.trim_start().starts_with("```") {
                in_fence = !in_fence;
                return false;
            }
            !in_fence && line.starts_with('#')
        })
        .map(slug)
        .collect()
}

#[test]
fn markdown_links_resolve() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut broken = Vec::new();
    for doc in DOCS {
        let path = root.join(doc);
        let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {doc}: {e}"));
        let slugs = heading_slugs(&text);
        for target in link_targets(&text) {
            if target.is_empty()
                || target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            if let Some(anchor) = target.strip_prefix('#') {
                if !slugs.iter().any(|s| s == anchor) {
                    broken.push(format!("{doc}: missing anchor {target}"));
                }
                continue;
            }
            // Relative file link (drop any #anchor; anchors into other
            // files are not resolved here).
            let file = target.split('#').next().unwrap_or(&target);
            if !root.join(file).exists() {
                broken.push(format!("{doc}: missing file {file}"));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken markdown links:\n{}",
        broken.join("\n")
    );
}

#[test]
fn docs_exist_and_are_nonempty() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for doc in DOCS {
        let text = fs::read_to_string(root.join(doc)).unwrap_or_else(|e| panic!("{doc}: {e}"));
        assert!(text.len() > 100, "{doc} is suspiciously small");
    }
}

#[test]
fn readme_links_architecture() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let readme = fs::read_to_string(root.join("README.md")).unwrap();
    assert!(
        link_targets(&readme)
            .iter()
            .any(|t| t.starts_with("ARCHITECTURE.md")),
        "README must link ARCHITECTURE.md"
    );
}
