//! TARMAC: trigger activation by repeated maximal-clique sampling (Lyu &
//! Mishra, IEEE TCAD 2021).

use netlist::Netlist;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sat::CircuitOracle;
use sim::rare::RareNetAnalysis;
use sim::TestPattern;

use crate::TestGenerator;

/// TARMAC transforms test generation into a clique-cover problem on the
/// rare-net *compatibility graph* and repeatedly samples random maximal
/// cliques, generating one SAT-justified pattern per clique.
///
/// Because cliques are sampled randomly (rather than learned), covering all
/// trigger combinations needs many samples — the source of TARMAC's large
/// test length that DETERRENT improves on.
#[derive(Debug, Clone)]
pub struct Tarmac {
    num_cliques: usize,
    seed: u64,
}

impl Tarmac {
    /// Creates a TARMAC generator that samples `num_cliques` maximal cliques.
    #[must_use]
    pub fn new(num_cliques: usize, seed: u64) -> Self {
        Self {
            num_cliques: num_cliques.max(1),
            seed,
        }
    }
}

impl TestGenerator for Tarmac {
    fn name(&self) -> &'static str {
        "TARMAC"
    }

    fn generate(&mut self, netlist: &Netlist, analysis: &RareNetAnalysis) -> Vec<TestPattern> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut oracle = CircuitOracle::new(netlist);
        let rare: Vec<_> = analysis
            .rare_nets()
            .iter()
            .filter(|r| oracle.is_compatible(&[(r.net, r.rare_value)]))
            .copied()
            .collect();
        let width = netlist.num_scan_inputs();
        if rare.is_empty() {
            return vec![TestPattern::random(width, &mut rng)];
        }

        // Pairwise compatibility adjacency, computed lazily per queried pair
        // and memoized (TARMAC recomputes compatibility on demand during
        // clique growth).
        let n = rare.len();
        let mut memo: Vec<Option<bool>> = vec![None; n * n];
        let compatible =
            |oracle: &mut CircuitOracle, memo: &mut Vec<Option<bool>>, i: usize, j: usize| {
                if i == j {
                    return false;
                }
                let key = i * n + j;
                if let Some(v) = memo[key] {
                    return v;
                }
                let v = oracle.is_compatible(&[
                    (rare[i].net, rare[i].rare_value),
                    (rare[j].net, rare[j].rare_value),
                ]);
                memo[key] = Some(v);
                memo[j * n + i] = Some(v);
                v
            };

        let mut patterns = Vec::with_capacity(self.num_cliques);
        for _ in 0..self.num_cliques {
            // Grow a random maximal clique.
            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(&mut rng);
            let mut clique: Vec<usize> = vec![order[0]];
            for &cand in &order[1..] {
                if clique
                    .iter()
                    .all(|&m| compatible(&mut oracle, &mut memo, m, cand))
                {
                    clique.push(cand);
                }
            }
            // Justify the clique; shrink greedily if joint justification fails
            // (pairwise compatibility does not imply joint satisfiability).
            loop {
                let targets: Vec<_> = clique
                    .iter()
                    .map(|&i| (rare[i].net, rare[i].rare_value))
                    .collect();
                if let Some(bits) = oracle.justify(&targets) {
                    let pattern = TestPattern::new(bits);
                    if !patterns.contains(&pattern) {
                        patterns.push(pattern);
                    }
                    break;
                }
                if clique.pop().is_none() {
                    break;
                }
            }
        }
        if patterns.is_empty() {
            patterns.push(TestPattern::random(width, &mut rng));
        }
        patterns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;
    use netlist::synth::BenchmarkProfile;
    use sim::Simulator;

    #[test]
    fn cliques_translate_into_activating_patterns() {
        let nl = BenchmarkProfile::c2670().scaled(25).generate(4);
        let analysis = RareNetAnalysis::estimate(&nl, 0.2, 2048, 1);
        let mut gen = Tarmac::new(8, 5);
        let patterns = gen.generate(&nl, &analysis);
        assert!(!patterns.is_empty());
        assert!(patterns.len() <= 8);
        let sim = Simulator::new(&nl);
        for p in &patterns {
            let values = sim.run(p);
            assert!(
                analysis
                    .rare_nets()
                    .iter()
                    .any(|r| values.value(r.net) == r.rare_value),
                "TARMAC pattern must excite at least one rare net"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let nl = BenchmarkProfile::c2670().scaled(30).generate(4);
        let analysis = RareNetAnalysis::estimate(&nl, 0.2, 1024, 1);
        let a = Tarmac::new(4, 11).generate(&nl, &analysis);
        let b = Tarmac::new(4, 11).generate(&nl, &analysis);
        assert_eq!(a, b);
    }

    #[test]
    fn handles_designs_without_rare_nets() {
        let nl = samples::c17();
        let analysis = RareNetAnalysis::exhaustive(&nl, 0.01);
        let patterns = Tarmac::new(4, 2).generate(&nl, &analysis);
        assert_eq!(patterns.len(), 1);
    }
}
