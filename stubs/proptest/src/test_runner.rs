//! Test-runner plumbing: per-test RNG, configuration, and case outcomes.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Outcome of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!`; it does not count.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// A failing outcome.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (discarded) outcome.
    #[must_use]
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic per-test random source driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator seeded from the test name (stable across runs), or from
    /// `PROPTEST_SEED` when set, so failures can be re-run with other seeds.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let seed = match std::env::var("PROPTEST_SEED") {
            Ok(v) => v.parse().unwrap_or(0),
            Err(_) => 0,
        };
        // FNV-1a over the test name mixed with the optional external seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
