//! Table 2: trigger coverage and test length of Random, TestMAX (ATPG
//! stand-in), MERO, TARMAC, TGRL, and DETERRENT on all eight benchmarks,
//! evaluated against randomly inserted HT-infected netlists.

use deterrent_bench::{format_results_table, run_all_techniques, BenchInstance, HarnessOptions};
use netlist::synth::BenchmarkProfile;

fn main() {
    let options = HarnessOptions::from_args();
    println!(
        "Table 2 — trigger coverage / test length (scale 1/{}, {} Trojans per design)\n",
        options.scale, options.num_trojans
    );

    let mut deterrent_reductions = Vec::new();
    let mut coverage_summary: Vec<(String, f64, f64)> = Vec::new();

    for profile in BenchmarkProfile::table2() {
        let instance = BenchInstance::prepare(&profile, &options, 0.1);
        if instance.trojans.is_empty() {
            println!(
                "{}: skipped (no satisfiable triggers at this scale)\n",
                profile.name
            );
            instance.finish(&options);
            continue;
        }
        let rows = run_all_techniques(&instance, &options);
        println!(
            "{}",
            format_results_table(
                &instance.name,
                instance.analysis.len(),
                instance.netlist.num_logic_gates(),
                &rows
            )
        );
        let deterrent = rows.iter().find(|r| r.technique == "DETERRENT");
        let tgrl = rows.iter().find(|r| r.technique == "TGRL");
        let tarmac = rows.iter().find(|r| r.technique == "TARMAC");
        if let (Some(d), Some(t), Some(m)) = (deterrent, tgrl, tarmac) {
            let baseline_len = ((t.test_length + m.test_length) / 2).max(1);
            deterrent_reductions.push(baseline_len as f64 / d.test_length.max(1) as f64);
            coverage_summary.push((
                instance.name.clone(),
                d.coverage,
                t.coverage.max(m.coverage),
            ));
        }
        instance.finish(&options);
    }

    if !deterrent_reductions.is_empty() {
        let avg: f64 = deterrent_reductions.iter().sum::<f64>() / deterrent_reductions.len() as f64;
        println!("Average test-length reduction of DETERRENT vs TARMAC/TGRL: {avg:.1}x");
        println!("(Paper reports 169x on the paper-sized benchmarks.)");
        let wins = coverage_summary
            .iter()
            .filter(|(_, d, b)| d + 2.0 >= *b)
            .count();
        println!(
            "DETERRENT matches or beats the best clique/RL baseline (within 2%) on {}/{} designs.",
            wins,
            coverage_summary.len()
        );
    }
}
