//! Configuration of the DETERRENT pipeline, split into per-stage sections.
//!
//! Each section configures exactly one stage of a
//! [`crate::DeterrentSession`] and is fingerprinted independently, so a
//! change to (say) the reward mode invalidates only the training artifact
//! while the rare-net analysis and compatibility graph stay cached.

use std::path::PathBuf;

use rl::PpoConfig;

use crate::{parse_bytes, CachePolicy, CompatStrategy};

/// When the agent receives its reward (Section 3.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RewardMode {
    /// Reward `|s_{t+1}|²` at every compatible step (the final architecture).
    #[default]
    AllSteps,
    /// Reward 0 at intermediate steps and `|s_T|²` at the end of the episode
    /// (the faster but slightly weaker variant of Table 1).
    EndOfEpisode,
}

/// How a candidate action's compatibility with the current state is checked
/// during an environment step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompatCheck {
    /// Use the precomputed pairwise-compatibility graph (the final
    /// architecture; cheap per step).
    #[default]
    PairwiseGraph,
    /// Run a full SAT justification of `state ∪ {action}` on every step (the
    /// naive formulation of Section 3.1; faithful to the paper's "a few
    /// seconds per check" bottleneck and used by the Table 1 ablation).
    ExactSat,
}

/// Stage ❶ — rare-net analysis (Monte-Carlo probability estimation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalysisConfig {
    /// Rareness threshold θ below which nets count as rare (paper default
    /// 0.1).
    pub rareness_threshold: f64,
    /// Number of random patterns used to estimate signal probabilities.
    pub probability_patterns: usize,
    /// Retention ceiling of the shared estimation artifact: the single
    /// estimation pass keeps candidates and witness rows for every net
    /// rarer than `max(witness_retain_threshold, rareness_threshold)`, so
    /// one [`crate::DeterrentSession::estimate`] artifact can be
    /// re-thresholded at any θ up to that ceiling without re-simulating.
    /// Raising it above θ widens the θ range one estimation covers at the
    /// cost of more retained witness words; it never changes any
    /// thresholded result.
    pub witness_retain_threshold: f64,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        Self {
            rareness_threshold: 0.1,
            probability_patterns: 16 * 1024,
            witness_retain_threshold: 0.25,
        }
    }
}

impl AnalysisConfig {
    /// The retention threshold the estimation stage actually uses: the
    /// configured ceiling, bumped up to the rareness threshold so the
    /// session's own θ is always covered.
    #[must_use]
    pub fn effective_retain(&self) -> f64 {
        self.witness_retain_threshold.max(self.rareness_threshold)
    }
}

/// Stage ❷ — offline pairwise-compatibility graph construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompatConfig {
    /// How the graph is computed: the simulation-first funnel (default) or
    /// one SAT query per pair (the paper's offline phase). Both yield
    /// bit-identical graphs. The funnel's enumeration tier defaults to the
    /// adaptive per-pair cost model; pin
    /// [`crate::EnumerationBudget::FixedSupportLimit`] inside the strategy to
    /// override it with the legacy fixed knob.
    pub strategy: CompatStrategy,
}

/// Stage ❸ — PPO training over the compatible-set MDP.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Reward schedule.
    pub reward_mode: RewardMode,
    /// Whether invalid actions are masked out (Section 3.3).
    pub masking: bool,
    /// Per-step compatibility check implementation.
    pub compat_check: CompatCheck,
    /// PPO hyper-parameters (entropy coefficient and λ implement Section
    /// 3.4).
    pub ppo: PpoConfig,
    /// Number of training episodes.
    pub episodes: usize,
    /// Episode length `T` (maximum actions per episode). Also bounds the
    /// greedy evaluation rollouts of the selection stage.
    pub steps_per_episode: usize,
    /// Episodes collected per frozen-policy round during parallel rollout
    /// collection. Fixed independently of the thread count so trajectories
    /// (and therefore training) do not depend on the hardware.
    pub rollout_round: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            reward_mode: RewardMode::AllSteps,
            masking: true,
            compat_check: CompatCheck::PairwiseGraph,
            ppo: PpoConfig::boosted_exploration(),
            episodes: 300,
            steps_per_episode: 64,
            rollout_round: 8,
        }
    }
}

/// Stage ❹ — harvest/selection of the compatible sets that become patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectConfig {
    /// Number of greedy evaluation rollouts used to harvest additional
    /// maximal sets after training.
    pub eval_rollouts: usize,
    /// `k` — how many of the largest distinct compatible sets become test
    /// patterns.
    pub k_patterns: usize,
}

impl Default for SelectConfig {
    fn default() -> Self {
        Self {
            eval_rollouts: 64,
            k_patterns: 32,
        }
    }
}

/// Every knob of the DETERRENT pipeline, grouped by stage.
///
/// The defaults correspond to the paper's final architecture: all-steps
/// reward, action masking, pairwise-graph compatibility checks, and boosted
/// exploration (entropy coefficient 1.0, GAE λ = 0.99).
///
/// `threads` and `seed` are session-wide: the seed feeds every stochastic
/// component, and the thread count sizes the deterministic parallel runtime
/// without ever affecting results (so it is excluded from artifact cache
/// keys).
#[derive(Debug, Clone, PartialEq)]
pub struct DeterrentConfig {
    /// Rare-net analysis (stage ❶).
    pub analysis: AnalysisConfig,
    /// Compatibility-graph construction (stage ❷).
    pub compat: CompatConfig,
    /// PPO training (stage ❸).
    pub train: TrainConfig,
    /// Set harvest and selection (stage ❹).
    pub select: SelectConfig,
    /// Worker threads of the deterministic parallel runtime, driving
    /// probability estimation, witness harvesting, every compatibility-funnel
    /// tier, and PPO rollout collection (the paper throws 64 processes at the
    /// offline phase). `0` resolves through [`exec::Exec::new`]: the
    /// `DETERRENT_THREADS` environment variable when set, otherwise all
    /// available cores. Results are bit-identical at any thread count.
    pub threads: usize,
    /// RNG seed controlling every stochastic component.
    pub seed: u64,
    /// Directory of the persistent artifact cache. `None` (the default)
    /// falls back to the `DETERRENT_CACHE_DIR` environment variable; when
    /// neither is set, sessions created with
    /// [`crate::DeterrentSession::new`] cache in memory only. Like the
    /// thread knob, the cache directory never affects results (artifacts
    /// round-trip bit-exactly) and is excluded from every cache key.
    pub cache_dir: Option<PathBuf>,
    /// Size budget and codec options of the persistent cache's disk tier.
    /// The default is unbounded with the full-fidelity codec (PR 4
    /// behaviour). When [`CachePolicy::max_bytes`] is unset, sessions fall
    /// back to the `DETERRENT_CACHE_MAX_BYTES` environment variable (a
    /// byte count, optionally with a `k`/`m`/`g` suffix — see
    /// [`crate::parse_bytes`]). Like `cache_dir`, the policy never affects
    /// results — only which lookups are served warm — and is excluded from
    /// every cache key.
    pub cache_policy: CachePolicy,
}

impl Default for DeterrentConfig {
    fn default() -> Self {
        Self {
            analysis: AnalysisConfig::default(),
            compat: CompatConfig::default(),
            train: TrainConfig::default(),
            select: SelectConfig::default(),
            threads: 0,
            seed: Self::DEFAULT_SEED,
            cache_dir: None,
            cache_policy: CachePolicy::default(),
        }
    }
}

impl DeterrentConfig {
    /// The seed the pipeline defaults ship with.
    pub const DEFAULT_SEED: u64 = 0xDE7E88EA7;

    /// Name of the environment variable consulted when
    /// [`DeterrentConfig::cache_dir`] is `None`.
    pub const CACHE_DIR_ENV: &'static str = "DETERRENT_CACHE_DIR";

    /// Name of the environment variable consulted when
    /// [`CachePolicy::max_bytes`] is `None`: a byte count, optionally with
    /// a `k`/`m`/`g` suffix (see [`crate::parse_bytes`]). Unparsable
    /// values are ignored (unbounded).
    pub const CACHE_MAX_BYTES_ENV: &'static str = "DETERRENT_CACHE_MAX_BYTES";

    /// A configuration sized for unit tests and examples: few episodes, small
    /// networks, small pattern budgets. Finishes in well under a second on
    /// scaled-down benchmark profiles.
    #[must_use]
    pub fn fast_preset() -> Self {
        Self {
            analysis: AnalysisConfig {
                probability_patterns: 4096,
                ..AnalysisConfig::default()
            },
            train: TrainConfig {
                ppo: PpoConfig {
                    hidden_sizes: vec![32, 32],
                    batch_size: 128,
                    ..PpoConfig::boosted_exploration()
                },
                episodes: 60,
                steps_per_episode: 24,
                ..TrainConfig::default()
            },
            select: SelectConfig {
                eval_rollouts: 16,
                k_patterns: 16,
            },
            ..Self::default()
        }
    }

    /// The paper-style configuration used by the full benchmark harness:
    /// longer training and larger networks.
    #[must_use]
    pub fn paper_preset() -> Self {
        Self {
            train: TrainConfig {
                episodes: 2000,
                steps_per_episode: 128,
                rollout_round: 16,
                ..TrainConfig::default()
            },
            select: SelectConfig {
                eval_rollouts: 256,
                k_patterns: 64,
            },
            ..Self::default()
        }
    }

    /// Returns a copy with the rareness threshold θ replaced.
    #[must_use]
    pub fn with_threshold(mut self, theta: f64) -> Self {
        self.analysis.rareness_threshold = theta;
        self
    }

    /// Returns a copy with the probability-estimation pattern budget
    /// replaced.
    #[must_use]
    pub fn with_probability_patterns(mut self, patterns: usize) -> Self {
        self.analysis.probability_patterns = patterns;
        self
    }

    /// Returns a copy with the estimation retention ceiling replaced (see
    /// [`AnalysisConfig::witness_retain_threshold`]). θ-sweeps set this to
    /// the sweep's largest θ (or leave the default 0.25, which covers every
    /// valid θ ≤ 0.25) so all cells share one estimation artifact.
    #[must_use]
    pub fn with_witness_retain(mut self, retain: f64) -> Self {
        self.analysis.witness_retain_threshold = retain;
        self
    }

    /// Returns a copy with the master seed replaced.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with the worker-thread knob replaced (0 = auto).
    /// Thread counts never affect results, only wall clock.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns a copy with the persistent-cache directory replaced.
    /// Cache directories never affect results, only wall clock.
    #[must_use]
    pub fn with_cache_dir(mut self, cache_dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(cache_dir.into());
        self
    }

    /// The effective persistent-cache directory: the explicit
    /// [`DeterrentConfig::cache_dir`] knob, else the non-empty
    /// `DETERRENT_CACHE_DIR` environment variable, else `None` (memory-only
    /// caching).
    #[must_use]
    pub fn resolved_cache_dir(&self) -> Option<PathBuf> {
        if self.cache_dir.is_some() {
            return self.cache_dir.clone();
        }
        std::env::var_os(Self::CACHE_DIR_ENV)
            .filter(|v| !v.is_empty())
            .map(PathBuf::from)
    }

    /// The effective cache policy: [`DeterrentConfig::cache_policy`], with
    /// a missing global budget filled from the `DETERRENT_CACHE_MAX_BYTES`
    /// environment variable (ignored when unset, empty, or unparsable).
    #[must_use]
    pub fn resolved_cache_policy(&self) -> CachePolicy {
        let mut policy = self.cache_policy;
        if policy.max_bytes.is_none() {
            policy.max_bytes = std::env::var(Self::CACHE_MAX_BYTES_ENV)
                .ok()
                .as_deref()
                .and_then(parse_bytes);
        }
        policy
    }

    /// Returns a copy with the persistent-cache policy replaced. Policies
    /// never affect results, only wall clock and disk footprint.
    #[must_use]
    pub fn with_cache_policy(mut self, policy: CachePolicy) -> Self {
        self.cache_policy = policy;
        self
    }

    /// Returns a copy with the persistent cache bounded at `max_bytes`
    /// (LRU eviction on insert; see [`CachePolicy`]).
    #[must_use]
    pub fn with_cache_max_bytes(mut self, max_bytes: u64) -> Self {
        self.cache_policy.max_bytes = Some(max_bytes);
        self
    }

    /// Returns a copy with the training episode budget replaced.
    #[must_use]
    pub fn with_episodes(mut self, episodes: usize) -> Self {
        self.train.episodes = episodes;
        self
    }

    /// Returns a copy with the per-step compatibility check replaced (the
    /// Table 1 exact-SAT ablation).
    #[must_use]
    pub fn with_compat_check(mut self, check: CompatCheck) -> Self {
        self.train.compat_check = check;
        self
    }

    /// Returns a copy with the graph-construction strategy replaced.
    #[must_use]
    pub fn with_strategy(mut self, strategy: CompatStrategy) -> Self {
        self.compat.strategy = strategy;
        self
    }

    /// Returns a copy with `k` (sets turned into patterns) replaced.
    #[must_use]
    pub fn with_k_patterns(mut self, k: usize) -> Self {
        self.select.k_patterns = k;
        self
    }

    /// Returns a copy with the greedy evaluation rollout budget replaced.
    #[must_use]
    pub fn with_eval_rollouts(mut self, rollouts: usize) -> Self {
        self.select.eval_rollouts = rollouts;
        self
    }

    /// Returns a copy with the reward/masking ablation of Figure 2 applied.
    #[must_use]
    pub fn with_ablation(mut self, reward_mode: RewardMode, masking: bool) -> Self {
        self.train.reward_mode = reward_mode;
        self.train.masking = masking;
        self
    }

    /// Returns a copy with default (non-boosted) exploration, for the
    /// Figure 3 comparison.
    #[must_use]
    pub fn with_default_exploration(mut self) -> Self {
        self.train.ppo.entropy_coef = 0.01;
        self.train.ppo.gae_lambda = 0.95;
        self
    }

    /// A stable fingerprint of every field that can change pipeline
    /// *results*: the four stage sections and the master seed. The thread
    /// knob and the cache settings are excluded — they only move work
    /// around, never change outputs. Two configs with equal fingerprints
    /// produce bit-identical pipelines, which is what lets a campaign
    /// checkpoint recognise rows computed by an equivalent earlier run.
    #[must_use]
    pub fn content_fingerprint(&self) -> u64 {
        crate::artifact::config_fingerprint(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_final_architecture() {
        let c = DeterrentConfig::default();
        assert_eq!(c.train.reward_mode, RewardMode::AllSteps);
        assert!(c.train.masking);
        assert_eq!(c.train.compat_check, CompatCheck::PairwiseGraph);
        assert!(matches!(c.compat.strategy, CompatStrategy::Funnel(_)));
        assert!((c.train.ppo.entropy_coef - 1.0).abs() < 1e-12);
        assert!((c.train.ppo.gae_lambda - 0.99).abs() < 1e-12);
        assert!((c.analysis.rareness_threshold - 0.1).abs() < 1e-12);
        assert_eq!(c.seed, DeterrentConfig::DEFAULT_SEED);
    }

    #[test]
    fn ablation_builder() {
        let c = DeterrentConfig::default().with_ablation(RewardMode::EndOfEpisode, false);
        assert_eq!(c.train.reward_mode, RewardMode::EndOfEpisode);
        assert!(!c.train.masking);
    }

    #[test]
    fn exploration_toggle() {
        let c = DeterrentConfig::default().with_default_exploration();
        assert!(c.train.ppo.entropy_coef < 0.5);
        assert!(c.train.ppo.gae_lambda < 0.99);
    }

    #[test]
    fn stage_builders_touch_only_their_section() {
        let base = DeterrentConfig::fast_preset();
        let c = base.clone().with_threshold(0.2).with_seed(9);
        assert!((c.analysis.rareness_threshold - 0.2).abs() < 1e-12);
        assert_eq!(c.seed, 9);
        assert_eq!(c.train, base.train, "train section untouched");
        assert_eq!(c.compat, base.compat, "compat section untouched");
        assert_eq!(c.select, base.select, "select section untouched");
    }

    #[test]
    fn content_fingerprint_tracks_semantics_only() {
        let base = DeterrentConfig::fast_preset();
        let fp = base.content_fingerprint();
        assert_eq!(fp, base.clone().content_fingerprint(), "stable");
        assert_eq!(
            fp,
            base.clone().with_threads(8).content_fingerprint(),
            "threads are non-semantic"
        );
        assert_eq!(
            fp,
            base.clone()
                .with_cache_dir("/tmp/elsewhere")
                .with_cache_max_bytes(1024)
                .content_fingerprint(),
            "cache settings are non-semantic"
        );
        assert_ne!(fp, base.clone().with_seed(123).content_fingerprint());
        assert_ne!(fp, base.clone().with_threshold(0.33).content_fingerprint());
        assert_ne!(
            fp,
            base.clone().with_witness_retain(0.4).content_fingerprint(),
            "retention ceiling moves the estimation artifact"
        );
        assert_ne!(fp, base.clone().with_episodes(1).content_fingerprint());
        assert_ne!(
            fp,
            base.clone()
                .with_ablation(RewardMode::EndOfEpisode, false)
                .content_fingerprint()
        );
    }

    #[test]
    fn effective_retain_never_drops_below_theta() {
        let c = AnalysisConfig::default();
        assert!((c.effective_retain() - 0.25).abs() < 1e-12);
        let wide = AnalysisConfig {
            rareness_threshold: 0.4,
            ..c
        };
        assert!((wide.effective_retain() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn presets_differ_in_scale() {
        assert!(
            DeterrentConfig::fast_preset().train.episodes
                < DeterrentConfig::paper_preset().train.episodes
        );
    }
}
