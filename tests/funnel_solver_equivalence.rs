//! Funnel equivalence under solver-configuration changes.
//!
//! The raw-speed SAT core (Luby restarts, learned-clause deletion,
//! self-tuned enumeration budgets) is a pure performance layer: every
//! verdict it returns must match the legacy pre-deletion solver exactly.
//! This suite builds the compatibility graph on a scaled c2670 and on a
//! planted-Trojan variant of it, with the modern and the legacy solver, at
//! one and at four worker threads, and demands:
//!
//! - bit-identical adjacency matrices (and identical kept rare-net lists)
//!   across every solver × thread combination;
//! - identical tier verdict counts (sim-witnessed / structurally pruned /
//!   cone-enumerated / SAT-resolved pair totals and the singleton split) —
//!   the funnel's routing is solver-independent; only timings and raw CDCL
//!   work counters may differ between configurations.

use deterrent_repro::deterrent_core::{
    CompatBuildOptions, CompatStrategy, CompatibilityGraph, FunnelOptions,
};
use deterrent_repro::netlist::synth::BenchmarkProfile;
use deterrent_repro::netlist::Netlist;
use deterrent_repro::sat::SolverConfig;
use deterrent_repro::sim::rare::RareNetAnalysis;
use deterrent_repro::trojan::TrojanGenerator;

fn build(
    netlist: &Netlist,
    analysis: &RareNetAnalysis,
    solver: SolverConfig,
    threads: usize,
) -> CompatibilityGraph {
    CompatibilityGraph::build_with(
        netlist,
        analysis,
        &CompatBuildOptions {
            threads,
            strategy: CompatStrategy::Funnel(FunnelOptions {
                solver,
                ..FunnelOptions::default()
            }),
        },
    )
}

/// The solver-independent slice of [`deterrent_repro::deterrent_core::CompatStats`]:
/// everything except timings and CDCL work counters.
fn tier_verdicts(g: &CompatibilityGraph) -> [u64; 8] {
    let s = g.stats();
    [
        s.candidate_rare_nets as u64,
        s.kept_rare_nets as u64,
        s.singleton_sim_resolved,
        s.singleton_sat_queries,
        s.pairs_sim_witnessed,
        s.pairs_structurally_pruned,
        s.pairs_cone_enumerated,
        s.pairs_sat_resolved,
    ]
}

fn assert_equivalent_on(netlist: &Netlist, label: &str) {
    let analysis = RareNetAnalysis::estimate(netlist, 0.2, 8192, 17);
    let reference = build(netlist, &analysis, SolverConfig::default(), 1);
    assert!(
        reference.stats().pairs_total > 0,
        "{label}: workload too small to be meaningful"
    );

    for threads in [1usize, 4] {
        for (solver_name, solver) in [
            ("modern", SolverConfig::default()),
            ("legacy", SolverConfig::legacy()),
        ] {
            let g = build(netlist, &analysis, solver, threads);
            assert_eq!(
                g.rare_nets(),
                reference.rare_nets(),
                "{label}: kept rare nets differ ({solver_name}, {threads} threads)"
            );
            assert_eq!(
                g.adjacency(),
                reference.adjacency(),
                "{label}: adjacency differs ({solver_name}, {threads} threads)"
            );
            assert_eq!(
                tier_verdicts(&g),
                tier_verdicts(&reference),
                "{label}: tier verdict counts differ ({solver_name}, {threads} threads)"
            );
        }
    }
}

#[test]
fn clean_netlist_adjacency_is_solver_and_thread_independent() {
    let netlist = BenchmarkProfile::c2670().scaled(20).generate(100);
    assert_equivalent_on(&netlist, "clean c2670@20");
}

#[test]
fn infected_netlist_adjacency_is_solver_and_thread_independent() {
    let netlist = BenchmarkProfile::c2670().scaled(20).generate(100);
    let analysis = RareNetAnalysis::estimate(&netlist, 0.2, 8192, 2);
    let mut adversary = TrojanGenerator::new(&netlist, 8);
    let trojan = adversary
        .sample(&analysis, 2)
        .expect("scaled c2670 admits a 2-trigger Trojan");
    let infected = deterrent_repro::trojan::infect(&netlist, &trojan).expect("infect");
    assert_equivalent_on(&infected, "infected c2670@20");
}
