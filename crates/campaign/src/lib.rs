//! Campaign sweeps over the DETERRENT pipeline.
//!
//! The paper's evaluation is a *campaign*: the same pipeline swept over
//! many benchmarks, rareness thresholds θ, and seeds (Table 2 runs every
//! technique over eight designs; TARMAC/TGRL-style coverage harnesses
//! repeat that per seed). This crate turns the staged
//! [`deterrent_core::DeterrentSession`] API into exactly that kind of
//! engine:
//!
//! * [`CampaignPlan`] — a grid of [`NetlistSpec`]s × θ × seeds over one
//!   base [`deterrent_core::DeterrentConfig`], expanded in a deterministic
//!   order by [`CampaignPlan::cells`].
//! * [`CampaignPlan::run`] — schedules every cell on the deterministic
//!   parallel runtime ([`exec::Exec`]), one
//!   [`deterrent_core::DeterrentSession`] per cell, all sharing one
//!   (optionally disk-backed and size-bounded) [`ArtifactStore`]. Per-cell
//!   stage progress streams through a [`ProgressSink`]. The resulting
//!   [`CampaignReport`] contains only deterministic quantities, so its
//!   TSV/Markdown rendering is **bit-identical at any thread count** and
//!   across warm restarts from the cache.
//! * Binaries: `deterrent-campaign` (run a sweep from the command line)
//!   and `deterrent-cache` (`stats` / `gc` / `verify` maintenance of a
//!   cache directory; see the binary sources for flag tables).
//!
//! # Example
//!
//! ```
//! use campaign::{CampaignPlan, NetlistSpec};
//! use deterrent_core::DeterrentConfig;
//! use netlist::synth::BenchmarkProfile;
//!
//! let plan = CampaignPlan {
//!     netlists: vec![NetlistSpec::new(BenchmarkProfile::c2670(), 20, 1)],
//!     thetas: vec![0.15, 0.2],
//!     seeds: vec![1, 2],
//!     base: DeterrentConfig::fast_preset(),
//!     cell_threads: 1,
//! };
//! // One netlist × two θ × two seeds = four cells, θ-major within a netlist.
//! let cells = plan.cells();
//! assert_eq!(cells.len(), 4);
//! assert_eq!(cells[0].theta, 0.15);
//! assert_eq!(cells[0].seed, 1);
//! assert_eq!(cells[3].theta, 0.2);
//! assert_eq!(cells[3].seed, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use deterrent_core::{
    ArtifactStore, DeterrentConfig, DeterrentResult, DeterrentSession, RunObserver, Stage,
    StageMetrics,
};
use exec::Exec;
use netlist::synth::BenchmarkProfile;
use netlist::Netlist;

/// One benchmark of a campaign: a synthetic profile, the divisor applied
/// to its paper-sized gate counts, and the generation seed.
#[derive(Debug, Clone)]
pub struct NetlistSpec {
    /// Display label (the profile's benchmark name).
    pub label: String,
    profile: BenchmarkProfile,
    /// Divisor applied to the profile (1 = paper-sized).
    pub scale: usize,
    /// Seed of the deterministic netlist generator.
    pub netlist_seed: u64,
}

impl NetlistSpec {
    /// A spec for `profile` shrunk by `scale` (1 = paper-sized), generated
    /// with `netlist_seed`.
    #[must_use]
    pub fn new(profile: BenchmarkProfile, scale: usize, netlist_seed: u64) -> Self {
        Self {
            label: profile.name.clone(),
            profile,
            scale,
            netlist_seed,
        }
    }

    /// Generates the netlist (deterministic in the spec).
    #[must_use]
    pub fn build(&self) -> Netlist {
        let profile = if self.scale <= 1 {
            self.profile.clone()
        } else {
            self.profile.scaled(self.scale)
        };
        profile.generate(self.netlist_seed)
    }
}

/// Looks up a benchmark profile by its lowercase name (`c2670`, `c5315`,
/// `c6288`, `c7552`, `s13207`, `s15850`, `s35932`, `mips`) — the names the
/// `deterrent-campaign --netlists` flag accepts.
#[must_use]
pub fn profile_by_name(name: &str) -> Option<BenchmarkProfile> {
    match name {
        "c2670" => Some(BenchmarkProfile::c2670()),
        "c5315" => Some(BenchmarkProfile::c5315()),
        "c6288" => Some(BenchmarkProfile::c6288()),
        "c7552" => Some(BenchmarkProfile::c7552()),
        "s13207" => Some(BenchmarkProfile::s13207()),
        "s15850" => Some(BenchmarkProfile::s15850()),
        "s35932" => Some(BenchmarkProfile::s35932()),
        "mips" => Some(BenchmarkProfile::mips()),
        _ => None,
    }
}

/// One cell of the expanded grid: which netlist, θ, and seed to run.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCell {
    /// Position in [`CampaignPlan::cells`] order (also the report row).
    pub index: usize,
    /// Label of the netlist spec.
    pub netlist: String,
    /// Index into [`CampaignPlan::netlists`].
    pub netlist_index: usize,
    /// Rareness threshold θ of this cell.
    pub theta: f64,
    /// Master pipeline seed of this cell.
    pub seed: u64,
}

/// A grid of pipeline runs: netlists × θ × seeds over one base config.
///
/// [`CampaignPlan::run`] executes the grid on the deterministic parallel
/// runtime with one shared [`ArtifactStore`], which is where campaigns pay
/// off: reruns (and overlapping grids) are served from the cache, and a
/// bounded cache (see [`deterrent_core::CachePolicy`]) keeps long sweeps
/// from growing the cache dir without limit.
#[derive(Debug, Clone)]
pub struct CampaignPlan {
    /// The benchmarks to sweep.
    pub netlists: Vec<NetlistSpec>,
    /// The rareness thresholds θ to sweep.
    pub thetas: Vec<f64>,
    /// The master seeds to sweep.
    pub seeds: Vec<u64>,
    /// Base configuration of every cell; each cell replaces only θ, the
    /// seed, and the thread knob.
    pub base: DeterrentConfig,
    /// Worker threads of each cell's *session* executor (0 is clamped to
    /// 1: campaign-level parallelism comes from the campaign executor, so
    /// cells default to serial sessions and results stay bit-identical
    /// whichever level the parallelism lives at).
    pub cell_threads: usize,
}

impl CampaignPlan {
    /// Expands the grid in deterministic report order: netlists outermost,
    /// then θ, then seeds.
    #[must_use]
    pub fn cells(&self) -> Vec<CampaignCell> {
        let mut cells = Vec::with_capacity(self.len());
        for (netlist_index, spec) in self.netlists.iter().enumerate() {
            for &theta in &self.thetas {
                for &seed in &self.seeds {
                    cells.push(CampaignCell {
                        index: cells.len(),
                        netlist: spec.label.clone(),
                        netlist_index,
                        theta,
                        seed,
                    });
                }
            }
        }
        cells
    }

    /// Number of cells in the grid.
    #[must_use]
    pub fn len(&self) -> usize {
        self.netlists.len() * self.thetas.len() * self.seeds.len()
    }

    /// `true` when the grid is empty along any axis.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs every cell of the grid on `exec`, sharing `store` across all
    /// sessions, streaming progress to `sink`. The report rows are in
    /// [`CampaignPlan::cells`] order regardless of which thread ran which
    /// cell, and contain only deterministic quantities — rendering the
    /// report is bit-identical at any thread count and across warm
    /// restarts from a persistent cache.
    #[must_use]
    pub fn run(
        &self,
        store: &ArtifactStore,
        exec: &Exec,
        sink: &dyn ProgressSink,
    ) -> CampaignReport {
        let netlists: Vec<Netlist> = self.netlists.iter().map(NetlistSpec::build).collect();
        let cells = self.cells();
        let results = exec.par_map(&cells, |_, cell| {
            sink.cell_started(cell);
            let config = self
                .base
                .clone()
                .with_threshold(cell.theta)
                .with_seed(cell.seed)
                .with_threads(self.cell_threads.max(1));
            let netlist = &netlists[cell.netlist_index];
            let mut session = DeterrentSession::with_store(netlist, config, store.clone());
            session.add_observer(Box::new(CellObserver { sink, cell }));
            let result = session.run();
            let row = CellResult::new(cell, netlist, &result);
            sink.cell_finished(&row);
            row
        });
        CampaignReport { cells: results }
    }
}

/// Deterministic outcome of one cell, a row of the [`CampaignReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The cell that produced this row.
    pub cell: CampaignCell,
    /// Logic gates of the (scaled) netlist.
    pub gates: usize,
    /// Rare nets found at this cell's θ.
    pub rare_nets: usize,
    /// Compatible sets selected (`k` largest distinct).
    pub sets: usize,
    /// Test patterns generated.
    pub patterns: usize,
    /// Largest compatible set harvested.
    pub max_compatible_set: usize,
}

impl CellResult {
    fn new(cell: &CampaignCell, netlist: &Netlist, result: &DeterrentResult) -> Self {
        Self {
            cell: cell.clone(),
            gates: netlist.num_logic_gates(),
            rare_nets: result.rare_nets.len(),
            sets: result.sets.len(),
            patterns: result.patterns.len(),
            max_compatible_set: result.metrics.max_compatible_set,
        }
    }
}

/// The collected rows of a campaign, in plan order.
///
/// Rows hold only quantities that are bit-identical at any thread count
/// and across warm cache restarts — no wall clocks, no cache counters —
/// so [`CampaignReport::to_tsv`] / [`CampaignReport::to_markdown`] output
/// can be `cmp`-gated in CI. Cache-tier counters belong on stderr (see
/// [`ArtifactStore::summary`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// One row per cell, in [`CampaignPlan::cells`] order.
    pub cells: Vec<CellResult>,
}

impl CampaignReport {
    const COLUMNS: [&'static str; 8] = [
        "netlist",
        "theta",
        "seed",
        "gates",
        "rare_nets",
        "sets",
        "patterns",
        "max_compatible_set",
    ];

    fn row(r: &CellResult) -> [String; 8] {
        [
            r.cell.netlist.clone(),
            format!("{}", r.cell.theta),
            format!("{}", r.cell.seed),
            format!("{}", r.gates),
            format!("{}", r.rare_nets),
            format!("{}", r.sets),
            format!("{}", r.patterns),
            format!("{}", r.max_compatible_set),
        ]
    }

    /// The report as tab-separated values with a header row.
    #[must_use]
    pub fn to_tsv(&self) -> String {
        let mut out = Self::COLUMNS.join("\t");
        out.push('\n');
        for r in &self.cells {
            out.push_str(&Self::row(r).join("\t"));
            out.push('\n');
        }
        out
    }

    /// The report as a GitHub-flavoured Markdown table.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", Self::COLUMNS.join(" | "));
        let _ = writeln!(out, "|{}", "---|".repeat(Self::COLUMNS.len()));
        for r in &self.cells {
            let _ = writeln!(out, "| {} |", Self::row(r).join(" | "));
        }
        out
    }
}

/// Receiver of campaign progress. Implementations must be [`Sync`]: cells
/// run on worker threads and report concurrently (events from different
/// cells interleave; events of one cell arrive in order). Progress is
/// strictly passive — results are identical with any sink.
pub trait ProgressSink: Sync {
    /// A cell is about to run.
    fn cell_started(&self, cell: &CampaignCell) {
        let _ = cell;
    }

    /// A pipeline stage of `cell` finished (cache hits included).
    fn stage_finished(&self, cell: &CampaignCell, metrics: &StageMetrics) {
        let _ = (cell, metrics);
    }

    /// A cell finished with `result`.
    fn cell_finished(&self, result: &CellResult) {
        let _ = result;
    }
}

/// A [`ProgressSink`] that reports nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct SilentProgress;

impl ProgressSink for SilentProgress {}

/// A [`ProgressSink`] printing one stderr line per stage and per cell.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrProgress;

impl ProgressSink for StderrProgress {
    fn cell_started(&self, cell: &CampaignCell) {
        eprintln!(
            "[campaign] cell {} start: {} θ={} seed={}",
            cell.index, cell.netlist, cell.theta, cell.seed
        );
    }

    fn stage_finished(&self, cell: &CampaignCell, metrics: &StageMetrics) {
        eprintln!(
            "[campaign] cell {} {}: {} in {:.3}s",
            cell.index,
            metrics.stage,
            if metrics.cache_hit {
                "warm"
            } else {
                "computed"
            },
            metrics.wall_seconds
        );
    }

    fn cell_finished(&self, result: &CellResult) {
        eprintln!(
            "[campaign] cell {} done: {} rare nets, {} sets, {} patterns",
            result.cell.index, result.rare_nets, result.sets, result.patterns
        );
    }
}

/// Forwards one session's [`RunObserver`] events to the campaign's
/// [`ProgressSink`], tagged with the cell.
struct CellObserver<'s> {
    sink: &'s dyn ProgressSink,
    cell: &'s CampaignCell,
}

impl RunObserver for CellObserver<'_> {
    fn stage_started(&mut self, _stage: Stage) {}

    fn stage_finished(&mut self, metrics: &StageMetrics) {
        self.sink.stage_finished(self.cell, metrics);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_plan() -> CampaignPlan {
        CampaignPlan {
            netlists: vec![
                NetlistSpec::new(BenchmarkProfile::c2670(), 25, 3),
                NetlistSpec::new(BenchmarkProfile::c5315(), 30, 3),
            ],
            thetas: vec![0.18, 0.22],
            seeds: vec![7, 8],
            base: DeterrentConfig::fast_preset()
                .with_probability_patterns(1024)
                .with_episodes(12)
                .with_eval_rollouts(4)
                .with_k_patterns(4),
            cell_threads: 1,
        }
    }

    #[test]
    fn cells_expand_in_deterministic_order() {
        let plan = tiny_plan();
        let cells = plan.cells();
        assert_eq!(cells.len(), plan.len());
        assert_eq!(cells.len(), 8);
        assert_eq!(cells[0].netlist, "c2670");
        assert_eq!((cells[0].theta, cells[0].seed), (0.18, 7));
        assert_eq!((cells[1].theta, cells[1].seed), (0.18, 8));
        assert_eq!((cells[2].theta, cells[2].seed), (0.22, 7));
        assert_eq!(cells[7].netlist, "c5315");
        assert!(cells.iter().enumerate().all(|(i, c)| c.index == i));
    }

    #[test]
    fn report_is_bit_identical_at_any_thread_count() {
        let plan = tiny_plan();
        let serial = plan.run(&ArtifactStore::new(), &Exec::new(1), &SilentProgress);
        let parallel = plan.run(&ArtifactStore::new(), &Exec::new(4), &SilentProgress);
        assert_eq!(serial, parallel);
        assert_eq!(serial.to_tsv(), parallel.to_tsv());
        assert_eq!(serial.to_markdown(), parallel.to_markdown());
        assert_eq!(serial.cells.len(), 8);
    }

    #[test]
    fn shared_store_makes_reruns_warm() {
        let plan = tiny_plan();
        let store = ArtifactStore::new();
        let exec = Exec::new(1);
        let cold = plan.run(&store, &exec, &SilentProgress);
        let misses_after_cold = store.counters().total_misses();
        assert!(misses_after_cold > 0);
        let warm = plan.run(&store, &exec, &SilentProgress);
        assert_eq!(cold, warm, "warm rerun must reproduce the report");
        assert_eq!(
            store.counters().total_misses(),
            misses_after_cold,
            "the rerun must not compute anything new"
        );
    }

    #[test]
    fn progress_reaches_the_sink() {
        use std::sync::Mutex;

        #[derive(Default)]
        struct Counting {
            started: Mutex<usize>,
            stages: Mutex<usize>,
            finished: Mutex<usize>,
        }
        impl ProgressSink for Counting {
            fn cell_started(&self, _cell: &CampaignCell) {
                *self.started.lock().unwrap() += 1;
            }
            fn stage_finished(&self, _cell: &CampaignCell, _metrics: &StageMetrics) {
                *self.stages.lock().unwrap() += 1;
            }
            fn cell_finished(&self, _result: &CellResult) {
                *self.finished.lock().unwrap() += 1;
            }
        }

        let mut plan = tiny_plan();
        plan.netlists.truncate(1);
        plan.thetas.truncate(1);
        let sink = Counting::default();
        let _ = plan.run(&ArtifactStore::new(), &Exec::new(2), &sink);
        assert_eq!(*sink.started.lock().unwrap(), 2);
        assert_eq!(*sink.finished.lock().unwrap(), 2);
        // Five stages per cell (empty-graph cells emit fewer; θ=0.18 on
        // c2670/25 finds rare nets, so all five run).
        assert!(*sink.stages.lock().unwrap() >= 2 * 2);
    }

    #[test]
    fn profiles_resolve_by_name() {
        for name in [
            "c2670", "c5315", "c6288", "c7552", "s13207", "s15850", "s35932", "mips",
        ] {
            assert!(profile_by_name(name).is_some(), "{name}");
        }
        assert!(profile_by_name("b17").is_none());
    }
}
