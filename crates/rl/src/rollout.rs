//! Deterministic parallel episode collection and the frozen-policy PPO
//! training loop built on it.
//!
//! The serial [`crate::train`] loop interleaves sampling and learning one
//! episode at a time. To use more than one core, [`train_parallel`] instead
//! alternates two phases:
//!
//! 1. **Collect.** A fixed-size *round* of episodes is rolled out against a
//!    frozen snapshot of the policy, fanned out over worker threads
//!    ([`collect_episodes`]). Episode `e` gets its own environment clone and
//!    its own action RNG, both seeded by splitting the master seed with the
//!    **global episode index** — never the worker id — so the trajectories
//!    are bit-identical at any thread count and are merged back in episode
//!    order.
//! 2. **Learn.** The round's transitions are fed to the trainer in episode
//!    order, triggering the usual batch-size-driven PPO updates.
//!
//! Because the round size is a configuration constant (not derived from the
//! hardware), the entire training run — losses, final weights, harvested
//! sets — is a pure function of the configuration and seed.

use std::time::Instant;

use exec::{split_seed, Exec};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{Environment, PpoTrainer, TrainReport, Transition};

/// Salt separating an episode's *action* stream from its *environment*
/// stream (both are split from the same master seed and episode index).
const ACTION_STREAM_SALT: u64 = 0xAC71_0257_ACCE_55ED;

/// Options for [`collect_episodes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectOptions {
    /// Number of episodes to collect.
    pub count: usize,
    /// Maximum steps per episode (episodes may end earlier via `done`).
    pub max_steps: usize,
    /// Master seed; per-episode streams are split from it.
    pub seed: u64,
    /// Global index of the first episode — episode `k` of this call uses
    /// stream `first_episode + k`, letting successive calls (training
    /// rounds, evaluation sweeps) draw disjoint stream ranges from one
    /// master seed.
    pub first_episode: u64,
    /// `true` rolls out the greedy policy (argmax, no sampling); the
    /// recorded `log_prob`/`value` fields are zero and the trajectories are
    /// meant for harvesting, not learning.
    pub greedy: bool,
}

/// One collected episode, in the order the steps happened.
#[derive(Debug, Clone)]
pub struct EpisodeOutcome<H> {
    /// The episode's transitions.
    pub transitions: Vec<Transition>,
    /// Sum of the rewards.
    pub total_reward: f64,
    /// Whatever the `finish` hook extracted from the episode's environment.
    pub harvest: H,
}

/// Rolls out `options.count` episodes of `proto` clones under the trainer's
/// **frozen** current policy, in parallel on `exec`, returning the episodes
/// in episode-index order (bit-identical at any thread count).
///
/// `finish` runs once per episode on that episode's environment after its
/// last step — the hook for draining per-episode state such as harvested
/// final sets.
pub fn collect_episodes<E, H, F>(
    proto: &E,
    trainer: &PpoTrainer,
    options: &CollectOptions,
    exec: &Exec,
    finish: F,
) -> Vec<EpisodeOutcome<H>>
where
    E: Environment + Clone + Sync,
    H: Send,
    F: Fn(&mut E) -> H + Sync,
{
    exec.par_index_map(options.count, |k| {
        let stream = options.first_episode + k as u64;
        let mut env = proto.clone();
        env.reseed(split_seed(options.seed, stream));
        let mut rng = StdRng::seed_from_u64(split_seed(options.seed ^ ACTION_STREAM_SALT, stream));
        let mut transitions = Vec::new();
        let mut state = env.reset();
        let mut total_reward = 0.0;
        for _ in 0..options.max_steps {
            let mask = env.action_mask();
            if !mask.is_empty() && !mask.iter().any(|&m| m) {
                break;
            }
            let (action, log_prob, value) = if options.greedy {
                (trainer.best_action(&state, &mask), 0.0, 0.0)
            } else {
                trainer.policy_step(&state, &mask, &mut rng)
            };
            let outcome = env.step(action);
            total_reward += outcome.reward;
            transitions.push(Transition {
                state: std::mem::take(&mut state),
                mask,
                action,
                reward: outcome.reward,
                done: outcome.done,
                log_prob,
                value,
            });
            state = outcome.state;
            if outcome.done {
                break;
            }
        }
        EpisodeOutcome {
            transitions,
            total_reward,
            harvest: finish(&mut env),
        }
    })
}

/// Options for [`train_parallel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelTrainOptions {
    /// Total number of episodes to run.
    pub episodes: usize,
    /// Maximum steps per episode.
    pub max_steps: usize,
    /// Episodes collected per frozen-policy round. A configuration constant
    /// — deriving it from the thread count would make training depend on the
    /// hardware.
    pub round_episodes: usize,
    /// Master seed for the per-episode environment and action streams.
    pub seed: u64,
}

/// Result of [`train_parallel`]: the usual report plus the per-episode
/// harvests in episode order.
#[derive(Debug, Clone)]
pub struct ParallelTrainOutcome<H> {
    /// Episode rewards/lengths, losses, and wall-clock of the run.
    pub report: TrainReport,
    /// One `finish` result per episode, in episode order.
    pub harvests: Vec<H>,
}

/// Snapshot emitted after every frozen-policy round of
/// [`train_parallel_observed`], for progress reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundProgress {
    /// Zero-based index of the round that just finished.
    pub round: usize,
    /// Episodes completed so far (including this round).
    pub episodes_done: usize,
    /// Total episodes the run will collect.
    pub episodes_total: usize,
    /// Mean total reward over this round's episodes.
    pub round_mean_reward: f64,
    /// Environment steps recorded by the trainer so far.
    pub total_steps: u64,
    /// PPO updates performed so far.
    pub total_updates: u64,
}

/// Frozen-policy round-based PPO training (see the module docs): collect a
/// round of episodes in parallel, learn from them in episode order, repeat.
///
/// The result is deterministic for a fixed configuration and seed,
/// regardless of `exec`'s thread count.
pub fn train_parallel<E, H, F>(
    proto: &E,
    trainer: &mut PpoTrainer,
    options: &ParallelTrainOptions,
    exec: &Exec,
    finish: F,
) -> ParallelTrainOutcome<H>
where
    E: Environment + Clone + Sync,
    H: Send,
    F: Fn(&mut E) -> H + Sync,
{
    train_parallel_observed(proto, trainer, options, exec, finish, |_| {})
}

/// [`train_parallel`] with a progress hook: `on_round` is called once after
/// every frozen-policy round, on the training thread, with a
/// [`RoundProgress`] snapshot. The hook observes only — training is
/// bit-identical with or without it.
pub fn train_parallel_observed<E, H, F, O>(
    proto: &E,
    trainer: &mut PpoTrainer,
    options: &ParallelTrainOptions,
    exec: &Exec,
    finish: F,
    mut on_round: O,
) -> ParallelTrainOutcome<H>
where
    E: Environment + Clone + Sync,
    H: Send,
    F: Fn(&mut E) -> H + Sync,
    O: FnMut(&RoundProgress),
{
    let start = Instant::now();
    let mut report = TrainReport::default();
    let mut harvests = Vec::with_capacity(options.episodes);
    let round = options.round_episodes.max(1);
    let mut next_episode = 0usize;
    let mut round_index = 0usize;
    while next_episode < options.episodes {
        let count = round.min(options.episodes - next_episode);
        let outcomes = collect_episodes(
            proto,
            trainer,
            &CollectOptions {
                count,
                max_steps: options.max_steps,
                seed: options.seed,
                first_episode: next_episode as u64,
                greedy: false,
            },
            exec,
            &finish,
        );
        let mut round_reward_sum = 0.0;
        for episode in outcomes {
            let steps = episode.transitions.len();
            for transition in episode.transitions {
                trainer.record(transition);
            }
            if let Some(losses) = trainer.update_if_ready() {
                report.losses.push((trainer.total_steps(), losses));
            }
            round_reward_sum += episode.total_reward;
            report.episode_rewards.push(episode.total_reward);
            report.episode_lengths.push(steps);
            harvests.push(episode.harvest);
        }
        next_episode += count;
        on_round(&RoundProgress {
            round: round_index,
            episodes_done: next_episode,
            episodes_total: options.episodes,
            round_mean_reward: round_reward_sum / count as f64,
            total_steps: trainer.total_steps(),
            total_updates: trainer.total_updates(),
        });
        round_index += 1;
    }
    report.wall_seconds = start.elapsed().as_secs_f64();
    ParallelTrainOutcome { report, harvests }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PpoConfig, StepOutcome};

    /// Bandit whose payoff arm is chosen by `reseed`, exercising the
    /// per-episode environment streams.
    #[derive(Clone)]
    struct SeededBandit {
        paying_arm: usize,
    }

    impl Environment for SeededBandit {
        fn state_dim(&self) -> usize {
            1
        }
        fn num_actions(&self) -> usize {
            2
        }
        fn reset(&mut self) -> Vec<f64> {
            vec![self.paying_arm as f64]
        }
        fn step(&mut self, action: usize) -> StepOutcome {
            StepOutcome {
                state: vec![self.paying_arm as f64],
                reward: if action == self.paying_arm { 1.0 } else { 0.0 },
                done: true,
            }
        }
        fn reseed(&mut self, seed: u64) {
            self.paying_arm = (seed % 2) as usize;
        }
    }

    fn transitions_digest(outcomes: &[EpisodeOutcome<usize>]) -> Vec<(usize, f64, f64, usize)> {
        outcomes
            .iter()
            .flat_map(|e| {
                e.transitions
                    .iter()
                    .map(|t| (t.action, t.reward, t.log_prob, e.harvest))
            })
            .collect()
    }

    #[test]
    fn collection_is_bit_identical_across_thread_counts() {
        let proto = SeededBandit { paying_arm: 0 };
        let trainer = PpoTrainer::new(1, 2, &PpoConfig::default(), 3);
        let options = CollectOptions {
            count: 40,
            max_steps: 4,
            seed: 99,
            first_episode: 0,
            greedy: false,
        };
        let collect = |threads| {
            collect_episodes(&proto, &trainer, &options, &Exec::new(threads), |env| {
                env.paying_arm
            })
        };
        let serial = collect(1);
        for threads in [2, 4, 7] {
            assert_eq!(
                transitions_digest(&serial),
                transitions_digest(&collect(threads)),
                "{threads} threads"
            );
        }
        // The reseed hook ran: both arms appear as initial conditions.
        let arms: Vec<usize> = serial.iter().map(|e| e.harvest).collect();
        assert!(arms.contains(&0) && arms.contains(&1));
    }

    #[test]
    fn first_episode_offsets_give_disjoint_streams() {
        let proto = SeededBandit { paying_arm: 0 };
        let trainer = PpoTrainer::new(1, 2, &PpoConfig::default(), 3);
        let base = CollectOptions {
            count: 8,
            max_steps: 1,
            seed: 7,
            first_episode: 0,
            greedy: false,
        };
        let exec = Exec::serial();
        let a = collect_episodes(&proto, &trainer, &base, &exec, |e| e.paying_arm);
        let b = collect_episodes(
            &proto,
            &trainer,
            &CollectOptions {
                first_episode: 8,
                ..base
            },
            &exec,
            |e| e.paying_arm,
        );
        // Streams 8..16 continue where 0..8 left off: collecting 16 from 0
        // reproduces the concatenation.
        let all = collect_episodes(
            &proto,
            &trainer,
            &CollectOptions { count: 16, ..base },
            &exec,
            |e| e.paying_arm,
        );
        let concat: Vec<_> = transitions_digest(&a)
            .into_iter()
            .chain(transitions_digest(&b))
            .collect();
        assert_eq!(concat, transitions_digest(&all));
    }

    #[test]
    fn greedy_mode_is_deterministic_and_skips_sampling() {
        let proto = SeededBandit { paying_arm: 1 };
        let trainer = PpoTrainer::new(1, 2, &PpoConfig::default(), 5);
        let options = CollectOptions {
            count: 6,
            max_steps: 1,
            seed: 1,
            first_episode: 0,
            greedy: true,
        };
        let a = collect_episodes(&proto, &trainer, &options, &Exec::new(3), |_| ());
        let b = collect_episodes(&proto, &trainer, &options, &Exec::serial(), |_| ());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.transitions[0].action, y.transitions[0].action);
            assert_eq!(x.transitions[0].log_prob, 0.0);
        }
    }

    #[test]
    fn observed_training_reports_rounds_and_changes_nothing() {
        let config = PpoConfig {
            batch_size: 8,
            hidden_sizes: vec![8],
            ..PpoConfig::default()
        };
        let options = ParallelTrainOptions {
            episodes: 20,
            max_steps: 1,
            round_episodes: 8,
            seed: 4,
        };
        let exec = Exec::serial();
        let proto = SeededBandit { paying_arm: 0 };
        let mut plain_trainer = PpoTrainer::new(1, 2, &config, 2);
        let plain = train_parallel(&proto, &mut plain_trainer, &options, &exec, |_| ());
        let mut rounds = Vec::new();
        let mut observed_trainer = PpoTrainer::new(1, 2, &config, 2);
        let observed = train_parallel_observed(
            &proto,
            &mut observed_trainer,
            &options,
            &exec,
            |_| (),
            |p| rounds.push(*p),
        );
        assert_eq!(
            plain.report.episode_rewards,
            observed.report.episode_rewards
        );
        assert_eq!(
            plain_trainer.loss_history(),
            observed_trainer.loss_history()
        );
        // 20 episodes in rounds of 8 → 8 + 8 + 4.
        assert_eq!(
            rounds.iter().map(|p| p.episodes_done).collect::<Vec<_>>(),
            vec![8, 16, 20]
        );
        assert_eq!(rounds.last().unwrap().episodes_total, 20);
        assert!(rounds.windows(2).all(|w| w[0].round + 1 == w[1].round));
    }

    #[test]
    fn train_parallel_learns_and_is_thread_count_invariant() {
        let config = PpoConfig {
            batch_size: 16,
            learning_rate: 0.01,
            hidden_sizes: vec![16],
            ..PpoConfig::default()
        };
        let options = ParallelTrainOptions {
            episodes: 300,
            max_steps: 1,
            round_episodes: 8,
            seed: 13,
        };
        let run = |threads: usize| {
            let proto = SeededBandit { paying_arm: 0 };
            let mut trainer = PpoTrainer::new(1, 2, &config, 11);
            let outcome =
                train_parallel(&proto, &mut trainer, &options, &Exec::new(threads), |_| ());
            (outcome.report.episode_rewards, trainer)
        };
        let (rewards_serial, trainer_serial) = run(1);
        let (rewards_parallel, trainer_parallel) = run(4);
        assert_eq!(
            rewards_serial, rewards_parallel,
            "training must not depend on the thread count"
        );
        assert_eq!(
            trainer_serial.loss_history(),
            trainer_parallel.loss_history()
        );
        // The arm depends on the episode seed; the trained policy should
        // read it off the observation most of the time.
        let tail = &rewards_serial[rewards_serial.len() - 100..];
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(mean > 0.8, "agent should learn the seeded bandit: {mean}");
    }
}
