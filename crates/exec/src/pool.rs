//! The scoped-thread execution pool.

use std::ops::Range;
use std::time::Instant;

use telemetry::{Counter, Histogram, SpanContext, Telemetry};

use crate::stats::StatsCell;
use crate::task::{catch_task, payload_message, CancelToken, TaskError};
use crate::{ExecStats, THREADS_ENV_VAR};

/// The one chunk-splitting rule shared by [`Exec`] and
/// [`crate::ExecPool`]: `0..n` divides into contiguous ranges of this
/// length (the last possibly shorter), one per worker. Keeping both
/// executors on this single helper is what makes their outputs
/// bit-identical by construction.
pub(crate) fn chunk_size(n: usize, threads: usize) -> usize {
    n.div_ceil(threads.min(n))
}

/// Pre-resolved telemetry handles so the hot dispatch path pays one branch
/// when telemetry is off and no registry lookups when it is on.
#[derive(Debug)]
struct ExecTelemetry {
    telemetry: Telemetry,
    /// Span to parent `exec.call` dispatch spans under (a session's stage
    /// context, a campaign attempt, …); `None` emits root spans.
    parent: Option<SpanContext>,
    calls: Counter,
    tasks: Counter,
    panics: Counter,
    cancelled: Counter,
    call_wall: Histogram,
}

/// A deterministic parallel executor with a fixed worker count.
///
/// `Exec` owns no long-lived threads: every parallel call spawns scoped
/// workers (joined before the call returns), so borrowing local data in task
/// closures works naturally and a dropped `Exec` leaks nothing. Splitting is
/// *static* — an index range is divided into one contiguous chunk per worker
/// and results are merged in chunk order — so outputs are independent of
/// scheduling and thread count.
///
/// Two failure modes are first-class: the *isolated* combinators
/// ([`Exec::par_map_isolated`], [`Exec::try_par_map`],
/// [`Exec::try_par_index_map`]) contain per-task panics as [`TaskError`]
/// values, and every executor carries a [`CancelToken`] consulted at chunk
/// and task boundaries so a cooperative shutdown skips unstarted work.
#[derive(Debug)]
pub struct Exec {
    threads: usize,
    stats: StatsCell,
    cancel: CancelToken,
    telemetry: Option<Box<ExecTelemetry>>,
}

impl Default for Exec {
    fn default() -> Self {
        Self::new(0)
    }
}

impl Exec {
    /// Creates an executor with `threads` workers.
    ///
    /// `0` means "auto": the `DETERRENT_THREADS` environment variable when
    /// set to a positive integer, otherwise
    /// [`std::thread::available_parallelism`].
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = if threads > 0 {
            threads
        } else {
            std::env::var(THREADS_ENV_VAR)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&t| t > 0)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
                })
        };
        Self {
            threads,
            stats: StatsCell::default(),
            cancel: CancelToken::new(),
            telemetry: None,
        }
    }

    /// An executor that runs everything inline on the calling thread,
    /// ignoring the environment. Useful as the serial reference in
    /// determinism tests and for callers that must not spawn.
    #[must_use]
    pub fn serial() -> Self {
        Self {
            threads: 1,
            stats: StatsCell::default(),
            cancel: CancelToken::new(),
            telemetry: None,
        }
    }

    /// Attaches a telemetry handle (builder style); see
    /// [`Exec::set_telemetry`].
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry, parent: Option<SpanContext>) -> Self {
        self.set_telemetry(telemetry, parent);
        self
    }

    /// Attaches a telemetry handle. Every parallel dispatch then emits one
    /// `exec.call` span (child of `parent` when given) and maintains the
    /// `exec.calls` / `exec.tasks` / `exec.panics_caught` /
    /// `exec.tasks_cancelled` counters and the `exec.call_wall_nanos`
    /// histogram, mirroring [`ExecStats`] exactly. Telemetry is strictly
    /// out-of-band: chunking, ordering, and results are unaffected.
    /// A disabled handle detaches.
    pub fn set_telemetry(&mut self, telemetry: Telemetry, parent: Option<SpanContext>) {
        self.telemetry = telemetry.is_enabled().then(|| {
            Box::new(ExecTelemetry {
                calls: telemetry.counter("exec.calls"),
                tasks: telemetry.counter("exec.tasks"),
                panics: telemetry.counter("exec.panics_caught"),
                cancelled: telemetry.counter("exec.tasks_cancelled"),
                call_wall: telemetry.histogram("exec.call_wall_nanos"),
                parent,
                telemetry,
            })
        });
    }

    /// Replaces the executor's cancel token (builder style), so several
    /// executors — or an executor and its driving loop — can share one flag.
    #[must_use]
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// A handle to the executor's cancel token. Cancelling it makes the
    /// isolated combinators skip all not-yet-started tasks (reported as
    /// [`crate::TaskFailure::Cancelled`]); the legacy infallible combinators
    /// always run to completion.
    #[must_use]
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// The resolved worker count (always at least 1).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Snapshot of the accumulated task/timing counters.
    #[must_use]
    pub fn stats(&self) -> ExecStats {
        self.stats.snapshot()
    }

    /// Resets the accumulated counters to zero.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Splits `0..n` into one contiguous range per worker, runs `work` on
    /// each range concurrently, and returns the per-range results **in range
    /// order**.
    ///
    /// This is the primitive the other combinators build on. The caller's
    /// `work` must make each range's result independent of how `0..n` was
    /// chunked (e.g. fold with an associative operation, or return per-index
    /// values) — then the merged output is bit-identical at any thread
    /// count.
    ///
    /// # Panics
    ///
    /// A panic inside `work` propagates to the caller, re-raised with the
    /// failing task range and the downcast payload message attached (the
    /// original payload text is preserved as a substring).
    pub fn par_ranges<R, F>(&self, n: usize, work: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        let span = self.telemetry.as_ref().map(|t| {
            let mut span = match &t.parent {
                Some(ctx) => t.telemetry.child_span(ctx, "exec.call"),
                None => t.telemetry.span("exec.call"),
            };
            span.attr_u64("tasks", n as u64);
            // Whether a dispatch happens at all can depend on which
            // session computed a shared artifact first, so dispatch spans
            // opt out of the canonical (thread-invariance) projection.
            span.vary(telemetry::NONDET_VARY_KEY, telemetry::Value::Bool(true));
            span
        });
        let busy_before = self
            .telemetry
            .as_ref()
            .map(|_| self.stats.snapshot().busy_nanos);
        let call_start = Instant::now();
        let results = if n == 0 {
            Vec::new()
        } else if self.threads <= 1 || n == 1 {
            let busy_start = Instant::now();
            let r = work(0..n);
            self.stats
                .record_busy(busy_start.elapsed().as_nanos() as u64);
            vec![r]
        } else {
            let chunk = chunk_size(n, self.threads);
            let work = &work;
            let stats = &self.stats;
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..n)
                    .step_by(chunk)
                    .map(|lo| {
                        let hi = (lo + chunk).min(n);
                        let handle = scope.spawn(move |_| {
                            let busy_start = Instant::now();
                            let r = work(lo..hi);
                            stats.record_busy(busy_start.elapsed().as_nanos() as u64);
                            r
                        });
                        (lo..hi, handle)
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|(range, h)| {
                        h.join().unwrap_or_else(|payload| {
                            panic!(
                                "exec worker panicked on tasks {}..{}: {}",
                                range.start,
                                range.end,
                                payload_message(payload.as_ref())
                            )
                        })
                    })
                    .collect()
            })
            .expect("exec thread scope")
        };
        let wall_ns = call_start.elapsed().as_nanos() as u64;
        self.stats.record_call(n as u64, wall_ns);
        if let Some(t) = &self.telemetry {
            t.calls.inc(1);
            t.tasks.inc(n as u64);
            t.call_wall.observe_nanos(wall_ns);
            if let Some(mut span) = span {
                span.vary_u64("wall_ns", wall_ns);
                if let Some(before) = busy_before {
                    let busy = self.stats.snapshot().busy_nanos.saturating_sub(before);
                    span.vary_u64("busy_ns", busy);
                }
                span.close();
            }
        }
        results
    }

    /// Applies `f` to every index in `0..n` and returns the results in index
    /// order.
    ///
    /// # Panics
    ///
    /// A panic inside `f` propagates to the caller, re-raised with the exact
    /// failing index and the downcast payload message attached.
    pub fn par_index_map<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.par_ranges(n, |range| {
            range
                .map(|i| catch_task(i, || f(i)).unwrap_or_else(|e| panic!("exec {e}")))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Applies `f(index, item)` to every item, containing per-task panics:
    /// the result vector holds, in item order, either the task's value or a
    /// [`TaskError`] with its index and downcast panic message. One failing
    /// task never prevents the others from running.
    ///
    /// Cancellation (via [`Exec::cancel_token`]) is checked before each
    /// task: once the token fires, remaining tasks report
    /// [`crate::TaskFailure::Cancelled`] without running. Tasks already in
    /// flight complete normally.
    pub fn par_map_isolated<T, R, F>(&self, items: &[T], f: F) -> Vec<Result<R, TaskError>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.par_ranges(items.len(), |range| {
            let mut out = Vec::with_capacity(range.len());
            for i in range {
                if self.cancel.is_cancelled() {
                    self.stats.record_task_cancelled();
                    if let Some(t) = &self.telemetry {
                        t.cancelled.inc(1);
                    }
                    out.push(Err(TaskError::cancelled(i)));
                    continue;
                }
                let result = catch_task(i, || f(i, &items[i]));
                if result.is_err() {
                    self.stats.record_panic_caught();
                    if let Some(t) = &self.telemetry {
                        t.panics.inc(1);
                    }
                }
                out.push(result);
            }
            out
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Fallible variant of [`Exec::par_map`]: all tasks run isolated, and
    /// the lowest-index failure (if any) is returned as the error.
    ///
    /// Because each chunk contains panics independently and results merge in
    /// index order, the reported error is the globally first failing task —
    /// identical at any thread count for deterministic task bodies.
    ///
    /// # Errors
    ///
    /// Returns the [`TaskError`] of the lowest-index task that panicked or
    /// was skipped by cancellation.
    pub fn try_par_map<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>, TaskError>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.par_map_isolated(items, f).into_iter().collect()
    }

    /// Fallible variant of [`Exec::par_index_map`]; see
    /// [`Exec::try_par_map`] for the error contract.
    ///
    /// # Errors
    ///
    /// Returns the [`TaskError`] of the lowest-index task that panicked or
    /// was skipped by cancellation.
    pub fn try_par_index_map<R, F>(&self, n: usize, f: F) -> Result<Vec<R>, TaskError>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let indices: Vec<usize> = (0..n).collect();
        self.try_par_map(&indices, |_, &i| f(i))
    }

    /// Applies `f(index, item)` to every item and returns the results in
    /// item order.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.par_index_map(items.len(), |i| f(i, &items[i]))
    }

    /// Like [`Exec::par_map`], but each worker first builds one scratch
    /// value with `init` and reuses it across all its items — the pattern
    /// for expensive per-thread state such as packed-word simulation
    /// buffers.
    ///
    /// `f` must not let the result depend on the scratch *history* (only on
    /// the current item), otherwise chunk boundaries would leak into the
    /// output.
    pub fn par_map_with<S, T, R, I, F>(&self, items: &[T], init: I, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        self.par_ranges(items.len(), |range| {
            let mut scratch = init();
            range
                .map(|i| f(&mut scratch, i, &items[i]))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Splits `items` into fixed-size chunks of `chunk_len`, applies
    /// `f(first_index, chunk)` to each, and returns the per-chunk results in
    /// chunk order.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero.
    pub fn par_chunks<T, R, F>(&self, items: &[T], chunk_len: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        assert!(chunk_len > 0, "chunk length must be positive");
        let chunks = items.len().div_ceil(chunk_len);
        self.par_index_map(chunks, |c| {
            let lo = c * chunk_len;
            let hi = (lo + chunk_len).min(items.len());
            f(lo, &items[lo..hi])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split_seed;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn resolves_thread_counts() {
        assert_eq!(Exec::new(3).threads(), 3);
        assert_eq!(Exec::serial().threads(), 1);
        assert!(Exec::new(0).threads() >= 1);
    }

    #[test]
    fn par_map_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let reference: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let exec = Exec::new(threads);
            assert_eq!(exec.par_map(&items, |_, &x| x * 3 + 1), reference);
        }
    }

    #[test]
    fn par_ranges_covers_exactly_once() {
        let exec = Exec::new(4);
        let ranges = exec.par_ranges(10, |r| r);
        let flat: Vec<usize> = ranges.into_iter().flatten().collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
        assert!(exec.par_ranges(0, |r| r).is_empty());
    }

    #[test]
    fn seeded_work_is_thread_count_independent() {
        let run = |threads| {
            Exec::new(threads).par_index_map(64, |i| {
                // Stand-in for per-chunk RNG streams.
                split_seed(0xDEAD, i as u64).wrapping_mul(i as u64 + 1)
            })
        };
        assert_eq!(run(1), run(4));
        assert_eq!(run(1), run(7));
    }

    #[test]
    fn par_map_with_builds_one_scratch_per_worker() {
        let inits = AtomicUsize::new(0);
        let exec = Exec::new(4);
        let items: Vec<u32> = (0..100).collect();
        let out = exec.par_map_with(
            &items,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<u32>::with_capacity(8)
            },
            |scratch, _, &x| {
                scratch.clear();
                scratch.push(x);
                scratch[0] + 1
            },
        );
        assert_eq!(out, (1..=100).collect::<Vec<_>>());
        assert!(inits.load(Ordering::Relaxed) <= 4, "at most one per worker");
    }

    #[test]
    fn par_chunks_sees_fixed_chunks_in_order() {
        let exec = Exec::new(3);
        let items: Vec<u8> = (0..10).collect();
        let sums = exec.par_chunks(&items, 4, |lo, chunk| {
            (lo, chunk.iter().map(|&x| u32::from(x)).sum::<u32>())
        });
        assert_eq!(sums, vec![(0, 6), (4, 22), (8, 17)]);
    }

    #[test]
    fn stats_count_calls_and_tasks() {
        let exec = Exec::new(2);
        let _ = exec.par_index_map(10, |i| i);
        let _ = exec.par_index_map(5, |i| i);
        let s = exec.stats();
        assert_eq!(s.calls, 2);
        assert_eq!(s.tasks, 15);
        assert!(s.speedup() > 0.0);
        exec.reset_stats();
        assert_eq!(exec.stats().calls, 0);
    }

    #[test]
    #[should_panic(expected = "chunk length")]
    fn zero_chunk_len_panics() {
        let _ = Exec::serial().par_chunks(&[1, 2, 3], 0, |_, _| ());
    }

    #[test]
    fn isolated_map_contains_panics_at_any_thread_count() {
        for threads in [1, 4] {
            let exec = Exec::new(threads);
            let items: Vec<u32> = (0..16).collect();
            let out = exec.par_map_isolated(&items, |_, &x| {
                assert!(x != 5 && x != 11, "task {x} exploded");
                x * 2
            });
            assert_eq!(out.len(), 16);
            for (i, r) in out.iter().enumerate() {
                if i == 5 || i == 11 {
                    let err = r.as_ref().unwrap_err();
                    assert_eq!(err.index, i);
                    assert!(
                        err.panic_message().unwrap().contains("exploded"),
                        "got: {err}"
                    );
                } else {
                    assert_eq!(*r.as_ref().unwrap(), (i as u32) * 2);
                }
            }
            assert_eq!(exec.stats().panics_caught, 2, "threads={threads}");
        }
    }

    #[test]
    fn try_par_map_reports_lowest_failing_index() {
        for threads in [1, 4] {
            let exec = Exec::new(threads);
            let items: Vec<u32> = (0..64).collect();
            let err = exec
                .try_par_map(&items, |_, &x| {
                    assert!(x != 9 && x != 40, "boom at {x}");
                    x
                })
                .unwrap_err();
            assert_eq!(err.index, 9, "threads={threads}");
            assert_eq!(
                exec.try_par_map(&items[..5], |_, &x| x).unwrap(),
                vec![0, 1, 2, 3, 4]
            );
        }
    }

    #[test]
    fn cancelled_token_skips_unstarted_tasks() {
        for threads in [1, 4] {
            let exec = Exec::new(threads);
            exec.cancel_token().cancel();
            let items: Vec<u32> = (0..8).collect();
            let out = exec.par_map_isolated(&items, |_, &x| x);
            assert!(out
                .iter()
                .all(|r| matches!(r, Err(e) if e.panic_message().is_none())));
            assert_eq!(exec.stats().tasks_cancelled, 8, "threads={threads}");
            // Reset re-arms the same executor.
            exec.cancel_token().reset();
            assert!(exec
                .par_map_isolated(&items, |_, &x| x)
                .iter()
                .all(Result::is_ok));
        }
    }

    #[test]
    fn mid_run_cancellation_is_observed_serially() {
        // On the serial path tasks run strictly in index order, so a token
        // fired by task 2 deterministically cancels tasks 3..8.
        let exec = Exec::serial();
        let token = exec.cancel_token();
        let items: Vec<u32> = (0..8).collect();
        let out = exec.par_map_isolated(&items, |i, &x| {
            if i == 2 {
                token.cancel();
            }
            x
        });
        assert!(out[..3].iter().all(Result::is_ok));
        assert!(out[3..].iter().all(Result::is_err));
        assert_eq!(exec.stats().tasks_cancelled, 5);
    }

    #[test]
    fn shared_token_spans_executors() {
        let token = CancelToken::new();
        let a = Exec::serial().with_cancel_token(token.clone());
        let b = Exec::new(4).with_cancel_token(token.clone());
        token.cancel();
        assert!(a.par_map_isolated(&[1], |_, &x| x)[0].is_err());
        assert!(b.par_map_isolated(&[1, 2], |_, &x| x)[1].is_err());
    }

    #[test]
    fn telemetry_counters_mirror_exec_stats() {
        use telemetry::{MemorySink, Telemetry};
        for threads in [1, 4] {
            let sink = MemorySink::new();
            let tele = Telemetry::new(vec![Box::new(sink.clone())]);
            let exec = Exec::new(threads).with_telemetry(tele.clone(), None);
            let items: Vec<u32> = (0..32).collect();
            let _ = exec.par_map_isolated(&items, |_, &x| {
                assert!(x != 3, "pow");
                x
            });
            let _ = exec.par_index_map(8, |i| i);
            let stats = exec.stats();
            assert_eq!(tele.counter("exec.calls").get(), stats.calls);
            assert_eq!(tele.counter("exec.tasks").get(), stats.tasks);
            assert_eq!(
                tele.counter("exec.panics_caught").get(),
                stats.panics_caught
            );
            // One "exec.call" span per dispatch, with the task count as a
            // deterministic attribute.
            let spans: Vec<_> = sink
                .events()
                .into_iter()
                .filter(|e| e.name == "exec.call")
                .collect();
            assert_eq!(spans.len() as u64, stats.calls, "threads={threads}");
            assert_eq!(spans[0].attr_u64("tasks"), Some(32));
        }
    }

    #[test]
    #[should_panic(expected = "task 7 panicked: kaboom")]
    fn legacy_path_reports_failing_index_and_message() {
        let _ = Exec::new(4).par_index_map(32, |i| {
            assert!(i != 7, "kaboom");
            i
        });
    }
}
