//! Variables, literals, clauses, and CNF formulas.

use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered densely from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// The variable index as `usize`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    #[must_use]
    pub fn positive(self) -> Lit {
        Lit::new(self, true)
    }

    /// The negative literal of this variable.
    #[must_use]
    pub fn negative(self) -> Lit {
        Lit::new(self, false)
    }

    /// The literal of this variable with the given polarity.
    #[must_use]
    pub fn lit(self, polarity: bool) -> Lit {
        Lit::new(self, polarity)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable together with a polarity.
///
/// Encoded as `2 * var + (negated as usize)` so literals can index arrays
/// (e.g. watch lists) directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal for `var` that is true when the variable is assigned
    /// `polarity`.
    #[must_use]
    pub fn new(var: Var, polarity: bool) -> Self {
        Lit(var.0 * 2 + u32::from(!polarity))
    }

    /// The underlying variable.
    #[must_use]
    pub fn var(self) -> Var {
        Var(self.0 / 2)
    }

    /// `true` for a positive literal, `false` for a negated one.
    #[must_use]
    pub fn polarity(self) -> bool {
        self.0.is_multiple_of(2)
    }

    /// Dense code usable as an array index (`2 * var + sign`).
    #[must_use]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from [`Lit::code`].
    #[must_use]
    pub fn from_code(code: usize) -> Self {
        Lit(code as u32)
    }

    /// The same literal in DIMACS convention (1-based, negative = negated).
    #[must_use]
    pub fn to_dimacs(self) -> i64 {
        let v = i64::from(self.0 / 2) + 1;
        if self.polarity() {
            v
        } else {
            -v
        }
    }

    /// Parses a DIMACS literal (non-zero).
    ///
    /// # Panics
    ///
    /// Panics if `value` is zero.
    #[must_use]
    pub fn from_dimacs(value: i64) -> Self {
        assert!(value != 0, "DIMACS literal must be non-zero");
        let var = Var(u32::try_from(value.unsigned_abs() - 1).expect("variable fits in u32"));
        Lit::new(var, value > 0)
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.polarity() {
            write!(f, "¬")?;
        }
        write!(f, "{}", self.var())
    }
}

/// A disjunction of literals.
pub type Clause = Vec<Lit>;

/// A CNF formula: a conjunction of clauses over `num_vars` variables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Clause>,
}

impl Cnf {
    /// Creates an empty formula with no variables.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty formula over `num_vars` variables.
    #[must_use]
    pub fn with_vars(num_vars: usize) -> Self {
        Self {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.num_vars as u32);
        self.num_vars += 1;
        v
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Grows the variable count to at least `n` (no-op if already larger).
    pub fn reserve_vars(&mut self, n: usize) {
        self.num_vars = self.num_vars.max(n);
    }

    /// Number of clauses.
    #[must_use]
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Returns `true` if the formula has no clauses.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Adds a clause, growing the variable count if the clause mentions a
    /// variable beyond the current range.
    pub fn add_clause(&mut self, clause: impl IntoIterator<Item = Lit>) {
        let clause: Clause = clause.into_iter().collect();
        for lit in &clause {
            self.num_vars = self.num_vars.max(lit.var().index() + 1);
        }
        self.clauses.push(clause);
    }

    /// The clauses of the formula.
    #[must_use]
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Evaluates the formula under a total assignment (indexed by variable).
    ///
    /// Returns `None` if the assignment is too short.
    #[must_use]
    pub fn eval(&self, assignment: &[bool]) -> Option<bool> {
        if assignment.len() < self.num_vars {
            return None;
        }
        Some(self.clauses.iter().all(|clause| {
            clause
                .iter()
                .any(|lit| assignment[lit.var().index()] == lit.polarity())
        }))
    }
}

impl FromIterator<Clause> for Cnf {
    fn from_iter<T: IntoIterator<Item = Clause>>(iter: T) -> Self {
        let mut cnf = Cnf::new();
        for clause in iter {
            cnf.add_clause(clause);
        }
        cnf
    }
}

impl Extend<Clause> for Cnf {
    fn extend<T: IntoIterator<Item = Clause>>(&mut self, iter: T) {
        for clause in iter {
            self.add_clause(clause);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_round_trips() {
        let v = Var(5);
        let pos = v.positive();
        let neg = v.negative();
        assert_eq!(pos.var(), v);
        assert!(pos.polarity());
        assert!(!neg.polarity());
        assert_eq!(!pos, neg);
        assert_eq!(!!pos, pos);
        assert_eq!(Lit::from_code(pos.code()), pos);
    }

    #[test]
    fn dimacs_conversion() {
        let v = Var(0);
        assert_eq!(v.positive().to_dimacs(), 1);
        assert_eq!(v.negative().to_dimacs(), -1);
        assert_eq!(Lit::from_dimacs(-3), Var(2).negative());
        assert_eq!(Lit::from_dimacs(7), Var(6).positive());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn dimacs_zero_panics() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn cnf_grows_vars_and_evaluates() {
        let mut cnf = Cnf::new();
        let a = Var(0);
        let b = Var(1);
        cnf.add_clause([a.positive(), b.positive()]);
        cnf.add_clause([a.negative(), b.negative()]);
        assert_eq!(cnf.num_vars(), 2);
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.eval(&[true, false]), Some(true));
        assert_eq!(cnf.eval(&[true, true]), Some(false));
        assert_eq!(cnf.eval(&[true]), None);
    }

    #[test]
    fn cnf_from_iterator() {
        let cnf: Cnf = vec![vec![Var(0).positive()], vec![Var(1).negative()]]
            .into_iter()
            .collect();
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.num_vars(), 2);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Var(3).to_string(), "x3");
        assert_eq!(Var(3).positive().to_string(), "x3");
        assert_eq!(Var(3).negative().to_string(), "¬x3");
    }
}
