//! The self-describing trace event: the one record type every
//! [`crate::TraceSink`] consumes and every JSONL trace line encodes.
//!
//! # Schema (version [`TRACE_SCHEMA_VERSION`])
//!
//! Every line is one JSON object with exactly these keys:
//!
//! | key        | type   | meaning                                          |
//! |------------|--------|--------------------------------------------------|
//! | `schema`   | number | schema version (currently 1)                     |
//! | `kind`     | string | `"span"`, `"mark"`, or `"metrics"`               |
//! | `name`     | string | span/event name (`"train"`, `"cell.3"`, …)       |
//! | `path`     | string | slash-joined span path from the root             |
//! | `id`       | number | span id, unique within the process               |
//! | `parent`   | number | parent span id (0 = root)                        |
//! | `start_ns` | number | start offset from the telemetry epoch            |
//! | `dur_ns`   | number | duration (0 for marks and metrics flushes)       |
//! | `attrs`    | object | **deterministic** attributes — identical at any  |
//! |            |        | thread count for the same run                    |
//! | `vary`     | object | nondeterministic attributes (wall times, global  |
//! |            |        | counter deltas, error strings)                   |
//!
//! The `attrs`/`vary` split is what makes the thread-invariance gate
//! possible: the **canonical projection** of an event keeps only
//! `{schema, kind, name, path, attrs}`. Sorting the canonical lines of a
//! trace yields a byte-identical document at threads 1 and 4, even though
//! ids, timings, and line order differ.
//!
//! Two classes of events are excluded from the canonical projection
//! because their very *existence* is scheduling-dependent, not just their
//! timings: `metrics` flushes (cumulative counters fold in
//! scheduling-attributed work) and any event carrying the reserved
//! [`NONDET_VARY_KEY`] vary key — emitters set it on spans whose
//! attachment point depends on which thread got there first (e.g. an
//! executor dispatch under whichever session computed a shared artifact).

use std::collections::BTreeMap;

use crate::json::{self, Value};

/// Version stamped into the `schema` field of every event.
pub const TRACE_SCHEMA_VERSION: u64 = 1;

/// Reserved `vary` key marking an event whose *presence* (not just its
/// timings) is scheduling-dependent. Such events are valid trace lines but
/// are dropped by [`canonicalize_trace`], so two runs of the same workload
/// at different thread counts still canonicalize identically.
pub const NONDET_VARY_KEY: &str = "nondet";

/// What a [`TraceEvent`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A closed span: a named interval with attributes.
    Span,
    /// An instantaneous point event (`dur_ns` = 0).
    Mark,
    /// A metric-registry flush; counters/gauges land in `attrs`,
    /// histograms in `vary`.
    Metrics,
}

impl EventKind {
    /// The `kind` field token.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Mark => "mark",
            EventKind::Metrics => "metrics",
        }
    }

    /// Parses a `kind` field token.
    #[must_use]
    pub fn parse(token: &str) -> Option<Self> {
        match token {
            "span" => Some(EventKind::Span),
            "mark" => Some(EventKind::Mark),
            "metrics" => Some(EventKind::Metrics),
            _ => None,
        }
    }
}

/// One telemetry event (see the module docs for the line schema).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// What the event describes.
    pub kind: EventKind,
    /// Span/event name.
    pub name: String,
    /// Slash-joined span path from the root.
    pub path: String,
    /// Span id, unique within the emitting process.
    pub id: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Start offset in nanoseconds from the telemetry epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for marks and metrics flushes).
    pub dur_ns: u64,
    /// Deterministic attributes (thread-count invariant).
    pub attrs: BTreeMap<String, Value>,
    /// Nondeterministic attributes (timings, global deltas, messages).
    pub vary: BTreeMap<String, Value>,
}

impl TraceEvent {
    /// The full event as a JSON value.
    #[must_use]
    pub fn to_value(&self) -> Value {
        json::obj([
            ("schema", Value::u64(TRACE_SCHEMA_VERSION)),
            ("kind", Value::str(self.kind.as_str())),
            ("name", Value::str(&*self.name)),
            ("path", Value::str(&*self.path)),
            ("id", Value::u64(self.id)),
            ("parent", Value::u64(self.parent)),
            ("start_ns", Value::u64(self.start_ns)),
            ("dur_ns", Value::u64(self.dur_ns)),
            ("attrs", Value::Obj(self.attrs.clone())),
            ("vary", Value::Obj(self.vary.clone())),
        ])
    }

    /// The full event as one JSONL line (no trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        self.to_value().to_json()
    }

    /// Whether this event belongs to the canonical projection: `metrics`
    /// flushes and events flagged with [`NONDET_VARY_KEY`] do not.
    #[must_use]
    pub fn is_canonical(&self) -> bool {
        self.kind != EventKind::Metrics && !self.vary.contains_key(NONDET_VARY_KEY)
    }

    /// The canonical projection: only the thread-invariant fields
    /// `{schema, kind, name, path, attrs}`, serialized with sorted keys.
    #[must_use]
    pub fn canonical_line(&self) -> String {
        json::obj([
            ("schema", Value::u64(TRACE_SCHEMA_VERSION)),
            ("kind", Value::str(self.kind.as_str())),
            ("name", Value::str(&*self.name)),
            ("path", Value::str(&*self.path)),
            ("attrs", Value::Obj(self.attrs.clone())),
        ])
        .to_json()
    }

    /// A deterministic attribute as a `u64`, if present and numeric.
    #[must_use]
    pub fn attr_u64(&self, key: &str) -> Option<u64> {
        self.attrs.get(key).and_then(Value::as_u64)
    }

    /// A deterministic attribute as a string, if present.
    #[must_use]
    pub fn attr_str(&self, key: &str) -> Option<&str> {
        self.attrs.get(key).and_then(Value::as_str)
    }

    /// A nondeterministic attribute as a `u64`, if present and numeric.
    #[must_use]
    pub fn vary_u64(&self, key: &str) -> Option<u64> {
        self.vary.get(key).and_then(Value::as_u64)
    }

    /// Parses and validates one JSONL trace line against the schema.
    ///
    /// Rejects malformed JSON, missing or extra top-level keys, wrong field
    /// types, unknown `kind` tokens, and unsupported schema versions.
    pub fn parse_line(line: &str) -> Result<Self, String> {
        let value = json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
        let Value::Obj(map) = value else {
            return Err("top level is not an object".to_string());
        };
        const KEYS: [&str; 10] = [
            "schema", "kind", "name", "path", "id", "parent", "start_ns", "dur_ns", "attrs", "vary",
        ];
        for key in map.keys() {
            if !KEYS.contains(&key.as_str()) {
                return Err(format!("unknown top-level key {key:?}"));
            }
        }
        let get = |key: &str| map.get(key).ok_or_else(|| format!("missing key {key:?}"));
        let num = |key: &str| {
            get(key)?
                .as_u64()
                .ok_or_else(|| format!("key {key:?} is not an unsigned integer"))
        };
        let text = |key: &str| {
            get(key)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("key {key:?} is not a string"))
        };
        let object = |key: &str| {
            get(key)?
                .as_obj()
                .cloned()
                .ok_or_else(|| format!("key {key:?} is not an object"))
        };
        let schema = num("schema")?;
        if schema != TRACE_SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema version {schema} (expected {TRACE_SCHEMA_VERSION})"
            ));
        }
        let kind_token = text("kind")?;
        let kind =
            EventKind::parse(&kind_token).ok_or_else(|| format!("unknown kind {kind_token:?}"))?;
        let event = TraceEvent {
            kind,
            name: text("name")?,
            path: text("path")?,
            id: num("id")?,
            parent: num("parent")?,
            start_ns: num("start_ns")?,
            dur_ns: num("dur_ns")?,
            attrs: object("attrs")?,
            vary: object("vary")?,
        };
        if event.name.is_empty() {
            return Err("empty event name".to_string());
        }
        if event.path.is_empty() {
            return Err("empty event path".to_string());
        }
        Ok(event)
    }
}

/// Validates every line of a JSONL trace document and returns the parsed
/// events. The error names the first offending line (1-based).
pub fn parse_trace(document: &str) -> Result<Vec<TraceEvent>, String> {
    document
        .lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| TraceEvent::parse_line(line).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

/// Canonicalizes a JSONL trace document: validates every line, drops the
/// non-canonical events (see [`TraceEvent::is_canonical`]), projects the
/// rest to their thread-invariant fields, and sorts the result. Two runs
/// of the same deterministic workload yield byte-identical output here
/// regardless of thread count or event interleaving.
///
/// # Errors
///
/// Returns the first schema violation, naming its line.
pub fn canonicalize_trace(document: &str) -> Result<String, String> {
    let mut lines: Vec<String> = parse_trace(document)?
        .iter()
        .filter(|e| e.is_canonical())
        .map(TraceEvent::canonical_line)
        .collect();
    lines.sort_unstable();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceEvent {
        TraceEvent {
            kind: EventKind::Span,
            name: "train".to_string(),
            path: "campaign/cell.0/attempt.0/train".to_string(),
            id: 7,
            parent: 3,
            start_ns: 10,
            dur_ns: 25,
            attrs: [("items".to_string(), Value::u64(12))]
                .into_iter()
                .collect(),
            vary: [("wall_ns".to_string(), Value::u64(25))]
                .into_iter()
                .collect(),
        }
    }

    #[test]
    fn line_round_trips_through_validation() {
        let event = sample();
        let parsed = TraceEvent::parse_line(&event.to_line()).unwrap();
        assert_eq!(parsed, event);
    }

    #[test]
    fn rejects_schema_violations() {
        let good = sample().to_line();
        assert!(TraceEvent::parse_line(&good.replace("\"schema\":1", "\"schema\":2")).is_err());
        assert!(
            TraceEvent::parse_line(&good.replace("\"kind\":\"span\"", "\"kind\":\"x\"")).is_err()
        );
        assert!(TraceEvent::parse_line(&good.replace("\"id\":7", "\"id\":\"7\"")).is_err());
        assert!(TraceEvent::parse_line(&good.replace("\"vary\"", "\"extra\"")).is_err());
        assert!(TraceEvent::parse_line("not json").is_err());
    }

    #[test]
    fn canonicalization_strips_nondeterminism_and_sorts() {
        let mut a = sample();
        let mut b = sample();
        b.name = "select".to_string();
        b.path = "campaign/cell.0/attempt.0/select".to_string();
        // Different ids, timings, and line order; same canonical sets.
        let doc_one = format!("{}\n{}\n", a.to_line(), b.to_line());
        a.id = 99;
        a.start_ns = 12345;
        a.vary.insert("wall_ns".to_string(), Value::u64(999));
        b.parent = 42;
        let doc_two = format!("{}\n{}\n", b.to_line(), a.to_line());
        assert_ne!(doc_one, doc_two);
        assert_eq!(
            canonicalize_trace(&doc_one).unwrap(),
            canonicalize_trace(&doc_two).unwrap()
        );
    }

    #[test]
    fn canonicalization_drops_nondeterministic_events() {
        let keep = sample();
        let mut metrics = sample();
        metrics.kind = EventKind::Metrics;
        let mut flagged = sample();
        flagged
            .vary
            .insert(NONDET_VARY_KEY.to_string(), Value::Bool(true));
        assert!(keep.is_canonical());
        assert!(!metrics.is_canonical());
        assert!(!flagged.is_canonical());
        let doc = format!(
            "{}\n{}\n{}\n",
            keep.to_line(),
            metrics.to_line(),
            flagged.to_line()
        );
        assert_eq!(
            canonicalize_trace(&doc).unwrap(),
            format!("{}\n", keep.canonical_line())
        );
    }
}
