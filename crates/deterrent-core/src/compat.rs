//! Offline pairwise-compatibility computation over rare nets.
//!
//! DETERRENT's offline phase decides, for every unordered pair of rare nets,
//! whether one input pattern can drive both to their rare values at once.
//! The paper answers every pair with an exact SAT justification, thrown at 64
//! processes. This module instead runs a **simulation-first funnel** that
//! reaches the same (bit-identical) adjacency with a fraction of the SAT
//! work:
//!
//! 1. **Tier 1 — sim witnesses.** The Monte-Carlo patterns already simulated
//!    for probability estimation are mined ([`sim::WitnessBank`]): any
//!    pattern under which both nets were observed at their rare values is a
//!    constructive proof of compatibility, costing one AND per 64 patterns.
//! 2. **Tier 2 — structural pruning.** Pairs whose fanin cones read disjoint
//!    sets of scan inputs ([`netlist::InputSupports`]) can be justified
//!    independently and the partial patterns merged, so the pair is
//!    compatible exactly when both nets are individually justifiable — which
//!    the singleton stage already established. Pairs whose **union** support
//!    is small are decided exactly by bounded exhaustive cone enumeration
//!    ([`sim::ConeSimulator`]): unlike random witnesses this proves
//!    *incompatibility* too, discharging the pairs that would otherwise
//!    always fall through to SAT. No pairwise SAT either way.
//! 3. **Tier 3 — cone-restricted incremental SAT.** Only the survivors reach
//!    a solver, and each worker poses them as assumptions against one
//!    persistent [`sat::ConeOracle`] that encodes the union of the two fanin
//!    cones on demand instead of re-encoding the whole netlist per query.

use std::time::Instant;

use exec::Exec;
use netlist::{InputSupports, NetId, Netlist};
use sat::{CircuitOracle, ConeOracle, SolverConfig, SolverStats};
use sim::rare::{RareNet, RareNetAnalysis};
use sim::{ConeSimulator, TestPattern, WitnessBank};

/// Below this many pairs the tier-1 witness sweep stays on the calling
/// thread: each check is a handful of word ANDs, so spawning workers would
/// cost more than the sweep itself. Results are identical either way.
const TIER1_PARALLEL_MIN_PAIRS: usize = 4096;

/// How tier 2 decides, per pair, whether bounded exhaustive cone enumeration
/// is worth running instead of falling through to SAT.
///
/// Enumerating a pair costs `2^k / 64 · cone` word operations, where `k` is
/// the union cone's scan-input support and `cone` its gate count — both known
/// before committing. A SAT query on the same cone has a roughly affine cost
/// in the cone size. Comparing the two per pair (the default,
/// [`EnumerationBudget::adaptive`]) lets small-support/large-cone pairs
/// enumerate deeper than any fixed support cutoff would dare while stopping
/// early on the cones where a fixed cutoff would burn milliseconds per pair.
/// The verdict itself is exact either way — the budget only chooses *where*
/// the exact answer comes from, never *what* it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnumerationBudget {
    /// Never enumerate (every unresolved pair goes to SAT).
    Disabled,
    /// The legacy fixed knob, kept as an override: enumerate exactly the
    /// pairs whose union support has at most this many scan inputs
    /// (clamped to 26).
    FixedSupportLimit(u32),
    /// The per-pair cost model: enumerate iff
    /// `2^support / 64 · cone ≤ sat_base_word_ops + sat_per_gate_word_ops · cone`,
    /// with `max_support` as a hard ceiling (clamped to 26).
    Adaptive {
        /// Fixed word-op-equivalent overhead of one SAT query (encoding,
        /// solver setup).
        sat_base_word_ops: u64,
        /// Marginal word-op-equivalent SAT cost per cone gate.
        sat_per_gate_word_ops: u64,
        /// Hard support ceiling regardless of the model's verdict.
        max_support: u32,
    },
    /// The default: fit the [`EnumerationBudget::Adaptive`] constants online,
    /// per netlist, instead of shipping calibrated ones. After tier 1 and
    /// structural pruning, the first `probe_pairs` unresolved pairs that the
    /// *calibrated* model would send to SAT anyway are resolved by SAT on
    /// the calling thread (so the fit — and therefore the enumerate/SAT
    /// split — is identical at every thread count), measuring the solver's
    /// decision/propagation counters per query against the pair's union
    /// cone size; a clamped least-squares affine fit of those samples
    /// becomes the `Adaptive` model for the remaining pairs. The clamp
    /// floor is the calibrated model itself, so self-tuning only ever
    /// grants *more* enumeration — which is why probing calibrated-SAT-bound
    /// pairs costs zero extra queries: each probe verdict replaces a tier-3
    /// query that was coming regardless. The singleton stage, which runs
    /// before any pair exists to probe, uses the calibrated
    /// [`EnumerationBudget::adaptive`] constants.
    SelfTuning {
        /// How many SAT-bound pairs to spend on probe SAT queries. The
        /// probes are not wasted: their verdicts land in the adjacency like
        /// any tier-3 pair.
        probe_pairs: u32,
        /// Hard support ceiling regardless of the fitted model's verdict.
        max_support: u32,
    },
}

impl EnumerationBudget {
    /// The default adaptive cost model. The constants are calibrated against
    /// this repo's CDCL solver on the synthetic ISCAS profiles: a
    /// cone-restricted query costs a fixed overhead (encode + solver setup,
    /// `2^18` word-op equivalents) plus a few hundred word ops per cone gate,
    /// deliberately weighted a little toward enumeration because packed
    /// sweeps are branch-free, cache-friendly, and parallelize perfectly.
    ///
    /// The model dominates any fixed support cutoff in both directions: a
    /// support-19 pair over a 25-net cone enumerates (declined by the old
    /// fixed-18 knob), while a support-16 pair over a 50 000-net cone goes to
    /// SAT (the fixed knob would burn ~50M word ops enumerating it).
    #[must_use]
    pub fn adaptive() -> Self {
        Self::Adaptive {
            sat_base_word_ops: 1 << 18,
            sat_per_gate_word_ops: 256,
            max_support: 26,
        }
    }

    /// The default self-tuning cost model: probe 8 unresolved pairs with SAT
    /// and fit the `Adaptive` constants from the measured solver counters.
    /// See [`EnumerationBudget::SelfTuning`].
    #[must_use]
    pub fn self_tuning() -> Self {
        Self::SelfTuning {
            probe_pairs: 8,
            max_support: 26,
        }
    }

    /// Whether enumeration is enabled at all.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        !matches!(
            self,
            Self::Disabled
                | Self::FixedSupportLimit(0)
                | Self::Adaptive { max_support: 0, .. }
                | Self::SelfTuning { max_support: 0, .. }
        )
    }

    /// The hard support ceiling a [`ConeSimulator`] must be sized for.
    #[must_use]
    pub fn support_ceiling(&self) -> u32 {
        match *self {
            Self::Disabled => 0,
            Self::FixedSupportLimit(limit) => limit.min(26),
            Self::Adaptive { max_support, .. } | Self::SelfTuning { max_support, .. } => {
                max_support.min(26)
            }
        }
    }

    /// Whether a query with the given union support and cone size should be
    /// enumerated. For [`EnumerationBudget::SelfTuning`] this applies the
    /// calibrated [`EnumerationBudget::adaptive`] constants — the fitted
    /// constants only exist inside a build, which resolves the variant to
    /// `Adaptive` after probing (this fallback is what the singleton stage
    /// uses).
    #[must_use]
    pub fn admits(&self, support: u32, cone_size: usize) -> bool {
        match *self {
            Self::Disabled => false,
            Self::FixedSupportLimit(limit) => support <= limit.min(26),
            Self::SelfTuning { max_support, .. } => {
                let Self::Adaptive {
                    sat_base_word_ops,
                    sat_per_gate_word_ops,
                    ..
                } = Self::adaptive()
                else {
                    unreachable!()
                };
                Self::Adaptive {
                    sat_base_word_ops,
                    sat_per_gate_word_ops,
                    max_support,
                }
                .admits(support, cone_size)
            }
            Self::Adaptive {
                sat_base_word_ops,
                sat_per_gate_word_ops,
                max_support,
            } => {
                if support > max_support.min(26) {
                    return false;
                }
                let chunks = (1u64 << support).div_ceil(64);
                let enum_word_ops = chunks.saturating_mul(cone_size as u64);
                let sat_word_ops = sat_base_word_ops
                    .saturating_add(sat_per_gate_word_ops.saturating_mul(cone_size as u64));
                enum_word_ops <= sat_word_ops
            }
        }
    }
}

/// Word-op-equivalent cost proxy of one probe SAT query, from the solver's
/// own counters. The flat term stands in for encode/setup work the counters
/// cannot see; the weights are scaled so the proxy lives on the same axis as
/// the enumeration cost (`2^support / 64 · cone` word ops).
fn probe_cost_word_ops(decisions: u64, propagations: u64) -> u64 {
    (1u64 << 16)
        .saturating_add(decisions.saturating_mul(768))
        .saturating_add(propagations.saturating_mul(24))
}

/// Clamped least-squares affine fit `cost ≈ base + per_gate · cone` over the
/// probe samples `(cone_gates, cost_word_ops)`. Falls back to the calibrated
/// [`EnumerationBudget::adaptive`] constants when the samples are too few or
/// degenerate (all probes on equal-sized cones).
///
/// The calibrated constants are the clamp *floor*, not the midpoint:
/// self-tuning only ever grants *more* enumeration than the calibrated
/// model, never less. The cost proxy cannot see the oracle's encode/setup
/// overhead (the flat term is a stand-in), so a downward fit would trade
/// SAT queries — the quantity the funnel exists to minimize — against an
/// understated estimate. Fitting upward is safe: it means the probes proved
/// real SAT queries cost more than the calibrated model assumed.
fn fit_enumeration_budget(samples: &[(u64, u64)]) -> (u64, u64) {
    const DEFAULT_BASE: u64 = 1 << 18;
    const DEFAULT_PER_GATE: u64 = 256;
    const BASE_RANGE: (f64, f64) = (DEFAULT_BASE as f64, (1u64 << 22) as f64);
    const PER_GATE_RANGE: (f64, f64) = (DEFAULT_PER_GATE as f64, 4096.0);
    if samples.len() < 2 {
        return (DEFAULT_BASE, DEFAULT_PER_GATE);
    }
    let n = samples.len() as f64;
    let mean_g = samples.iter().map(|&(g, _)| g as f64).sum::<f64>() / n;
    let mean_c = samples.iter().map(|&(_, c)| c as f64).sum::<f64>() / n;
    let var_g = samples
        .iter()
        .map(|&(g, _)| (g as f64 - mean_g).powi(2))
        .sum::<f64>();
    let per_gate = if var_g > 0.0 {
        let cov = samples
            .iter()
            .map(|&(g, c)| (g as f64 - mean_g) * (c as f64 - mean_c))
            .sum::<f64>();
        (cov / var_g).clamp(PER_GATE_RANGE.0, PER_GATE_RANGE.1)
    } else {
        DEFAULT_PER_GATE as f64
    };
    let base = (mean_c - per_gate * mean_g).clamp(BASE_RANGE.0, BASE_RANGE.1);
    (base as u64, per_gate as u64)
}

/// Per-tier toggles of the compatibility funnel. Disabling a tier pushes its
/// pairs down to the next one; with everything off the funnel degenerates to
/// the all-SAT baseline (on whole-netlist oracles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunnelOptions {
    /// Tier 1: resolve pairs from retained simulation witnesses.
    pub sim_witnesses: bool,
    /// Tier 2: resolve pairs whose cone supports are disjoint.
    pub structural_pruning: bool,
    /// Tier 2: when bounded exhaustive cone enumeration runs (the only
    /// SAT-free tier that can prove a pair *incompatible*). Defaults to the
    /// self-tuning per-pair cost model.
    pub enumeration: EnumerationBudget,
    /// Tier 3 flavour: `true` uses lazy cone-restricted incremental oracles,
    /// `false` uses whole-netlist oracles (one per worker, as the paper
    /// does).
    pub cone_sat: bool,
    /// Configuration of every CDCL solver the build creates (restart policy,
    /// clause deletion). Verdicts — and therefore the adjacency — are
    /// solver-configuration-independent; only the work to reach them
    /// changes. `SolverConfig::legacy()` selects the pre-deletion solver for
    /// differential comparisons.
    pub solver: SolverConfig,
}

impl Default for FunnelOptions {
    fn default() -> Self {
        Self {
            sim_witnesses: true,
            structural_pruning: true,
            enumeration: EnumerationBudget::self_tuning(),
            cone_sat: true,
            solver: SolverConfig::default(),
        }
    }
}

/// How the compatibility graph is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompatStrategy {
    /// One SAT justification per pair (the paper's offline phase).
    AllSat,
    /// The three-tier simulation-first funnel.
    Funnel(FunnelOptions),
}

impl Default for CompatStrategy {
    fn default() -> Self {
        CompatStrategy::Funnel(FunnelOptions::default())
    }
}

/// Options for [`CompatibilityGraph::build_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompatBuildOptions {
    /// Worker threads for the parallel tiers (witness sweep, cone
    /// enumeration, SAT). `0` resolves through [`exec::Exec::new`]: the
    /// `DETERRENT_THREADS` environment variable, else all available cores.
    /// The adjacency matrix is bit-identical at any thread count.
    pub threads: usize,
    /// Resolution strategy.
    pub strategy: CompatStrategy,
}

impl Default for CompatBuildOptions {
    fn default() -> Self {
        Self {
            threads: 1,
            strategy: CompatStrategy::default(),
        }
    }
}

/// How each singleton and pair of the graph was resolved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompatStats {
    /// Rare nets fed into the singleton filter.
    pub candidate_rare_nets: usize,
    /// Rare nets kept (individually justifiable).
    pub kept_rare_nets: usize,
    /// Singletons resolved by simulation — a retained witness or an
    /// exhaustive cone enumeration — without SAT.
    pub singleton_sim_resolved: u64,
    /// Singleton SAT justification queries.
    pub singleton_sat_queries: u64,
    /// Unordered pairs over the kept rare nets.
    pub pairs_total: u64,
    /// Pairs resolved by tier 1 (joint simulation witness).
    pub pairs_sim_witnessed: u64,
    /// Pairs resolved by tier 2 (disjoint cone supports).
    pub pairs_structurally_pruned: u64,
    /// Pairs resolved by tier 2 (bounded exhaustive cone enumeration).
    pub pairs_cone_enumerated: u64,
    /// Pairs resolved by tier 3 (one SAT query each).
    pub pairs_sat_resolved: u64,
    /// Worker threads the parallel tiers ran on.
    pub threads_used: usize,
    /// Wall nanoseconds spent in tier 1 (joint-witness sweep).
    pub tier1_nanos: u64,
    /// Wall nanoseconds spent in tier 2 (structural pruning + budget probe +
    /// bounded cone enumeration).
    pub tier2_nanos: u64,
    /// Wall nanoseconds spent in tier 3 (SAT on the survivors).
    pub tier3_nanos: u64,
    /// Aggregate CDCL statistics over every solver the build created
    /// (singleton/probe oracle + per-worker tier-3 oracles). Totals depend
    /// on how tier 3 was chunked across workers, so they are
    /// scheduling-dependent — unlike the adjacency and the tier pair
    /// counts.
    pub solver: SolverStats,
    /// Effective `sat_base_word_ops` of the enumeration cost model (fitted
    /// when `budget_self_tuned`, configured for `Adaptive`, 0 otherwise).
    /// The probe runs sequentially on deterministically-ordered pairs, so
    /// fitted constants are identical at every thread count.
    pub budget_sat_base_word_ops: u64,
    /// Effective `sat_per_gate_word_ops` of the enumeration cost model.
    pub budget_sat_per_gate_word_ops: u64,
    /// Pairwise SAT queries spent probing for the self-tuning fit (also
    /// counted in `pairs_sat_resolved` — probe verdicts land in the
    /// adjacency like any tier-3 pair).
    pub budget_probe_queries: u64,
    /// Whether the enumeration cost model was fitted online.
    pub budget_self_tuned: bool,
}

impl CompatStats {
    /// Pairwise SAT queries spent (one per tier-3 pair).
    #[must_use]
    pub fn pairwise_sat_queries(&self) -> u64 {
        self.pairs_sat_resolved
    }

    /// All SAT queries spent (singleton + pairwise).
    #[must_use]
    pub fn total_sat_queries(&self) -> u64 {
        self.singleton_sat_queries + self.pairs_sat_resolved
    }

    /// Fraction of pairs resolved without SAT, in `[0, 1]`.
    #[must_use]
    pub fn sat_free_pair_fraction(&self) -> f64 {
        if self.pairs_total == 0 {
            return 1.0;
        }
        1.0 - self.pairs_sat_resolved as f64 / self.pairs_total as f64
    }

    /// Total wall nanoseconds across the three pairwise tiers.
    #[must_use]
    pub fn tier_nanos_total(&self) -> u64 {
        self.tier1_nanos + self.tier2_nanos + self.tier3_nanos
    }
}

/// Either flavour of tier-3 oracle, so workers share one code path.
enum PairOracle<'a> {
    Cone(Box<ConeOracle<'a>>),
    Full(Box<CircuitOracle>),
}

impl<'a> PairOracle<'a> {
    fn new(netlist: &'a Netlist, cone: bool, solver: SolverConfig) -> Self {
        if cone {
            PairOracle::Cone(Box::new(ConeOracle::with_config(netlist, solver)))
        } else {
            PairOracle::Full(Box::new(CircuitOracle::with_config(netlist, solver)))
        }
    }

    fn is_compatible(&mut self, targets: &[(NetId, bool)]) -> bool {
        match self {
            PairOracle::Cone(o) => o.is_compatible(targets),
            PairOracle::Full(o) => o.is_compatible(targets),
        }
    }

    fn solver_stats(&self) -> SolverStats {
        match self {
            PairOracle::Cone(o) => o.solver_stats(),
            PairOracle::Full(o) => o.solver_stats(),
        }
    }
}

/// Pairwise compatibility of the rare nets of one design.
///
/// Two rare nets are *compatible* when a single input pattern can drive both
/// to their rare values simultaneously. DETERRENT computes this relation for
/// every pair offline and uses it for action masking and cheap per-step state
/// transitions.
///
/// Rare nets are referred to by their index into
/// [`CompatibilityGraph::rare_nets`], which preserves the order of the
/// originating [`RareNetAnalysis`].
#[derive(Debug, Clone)]
pub struct CompatibilityGraph {
    rare_nets: Vec<RareNet>,
    /// Row-major adjacency matrix, `adj[i * n + j]`.
    adjacency: Vec<bool>,
    stats: CompatStats,
    /// The estimation run's witness bank, retained for downstream pattern
    /// reuse (rows are indexed by *candidate* position, see `witness_rows`).
    witnesses: Option<WitnessBank>,
    /// Bank row of each kept rare net: `witness_rows[graph_idx]` is the
    /// candidate index of `rare_nets[graph_idx]` in the originating analysis.
    witness_rows: Vec<usize>,
}

impl CompatibilityGraph {
    /// Computes the graph with the default (funnel) strategy and `threads`
    /// worker threads for the SAT tier.
    ///
    /// Rare nets whose rare value is individually unjustifiable (possible
    /// when Monte-Carlo probability estimation reports ≈0 for a value the
    /// logic can never produce) are dropped up front: they can never be part
    /// of an activatable trigger, so neither the adversary nor the agent has
    /// any use for them.
    #[must_use]
    pub fn build(netlist: &Netlist, analysis: &RareNetAnalysis, threads: usize) -> Self {
        Self::build_with(
            netlist,
            analysis,
            &CompatBuildOptions {
                threads,
                strategy: CompatStrategy::default(),
            },
        )
    }

    /// Computes the graph with explicit strategy options. Every strategy
    /// produces the identical adjacency matrix; they differ only in how much
    /// SAT work is spent reaching it.
    #[must_use]
    pub fn build_with(
        netlist: &Netlist,
        analysis: &RareNetAnalysis,
        options: &CompatBuildOptions,
    ) -> Self {
        let exec = Exec::new(options.threads);
        Self::build_on(netlist, analysis, options.strategy, &exec)
    }

    /// Like [`CompatibilityGraph::build_with`], but runs on a caller-provided
    /// executor instead of spawning its own — the build's task and timing
    /// counters then land in that executor's [`exec::ExecStats`]. This is
    /// what a [`crate::DeterrentSession`] uses so one `Exec` serves every
    /// stage.
    #[must_use]
    pub fn build_on(
        netlist: &Netlist,
        analysis: &RareNetAnalysis,
        strategy: CompatStrategy,
        exec: &Exec,
    ) -> Self {
        let funnel = match strategy {
            CompatStrategy::AllSat => FunnelOptions {
                sim_witnesses: false,
                structural_pruning: false,
                enumeration: EnumerationBudget::Disabled,
                cone_sat: false,
                solver: SolverConfig::default(),
            },
            CompatStrategy::Funnel(f) => f,
        };
        let mut stats = CompatStats {
            candidate_rare_nets: analysis.len(),
            threads_used: exec.threads(),
            ..CompatStats::default()
        };

        // Witness rows are indexed like `analysis.rare_nets()`.
        let bank: Option<&WitnessBank> = if funnel.sim_witnesses {
            analysis.witnesses()
        } else {
            None
        };

        // The configured budget drives the singleton stage (for SelfTuning:
        // with calibrated fallback constants — there is nothing to probe
        // before pairs exist); the pairwise budget is resolved after the
        // probe below.
        let configured_budget = funnel.enumeration;
        let mut cone_sim = configured_budget
            .is_enabled()
            .then(|| ConeSimulator::new(netlist, configured_budget.support_ceiling()));

        // ── Singleton stage: keep only individually justifiable nets. ──────
        // The oracle is created on first SAT need; with witnesses attached it
        // usually never is, and when it is, it carries over to tier 3.
        let mut singleton_oracle: Option<PairOracle<'_>> = None;
        let mut rare_nets: Vec<RareNet> = Vec::with_capacity(analysis.len());
        let mut kept_candidate_idx: Vec<usize> = Vec::with_capacity(analysis.len());
        for (ci, r) in analysis.rare_nets().iter().enumerate() {
            let target = [(r.net, r.rare_value)];
            let justifiable = if bank.is_some_and(|b| b.has_witness(ci)) {
                stats.singleton_sim_resolved += 1;
                true
            } else if let Some(verdict) = cone_sim
                .as_mut()
                .and_then(|d| d.decide_if(&target, |k, cone| configured_budget.admits(k, cone)))
            {
                stats.singleton_sim_resolved += 1;
                verdict
            } else {
                stats.singleton_sat_queries += 1;
                singleton_oracle
                    .get_or_insert_with(|| PairOracle::new(netlist, funnel.cone_sat, funnel.solver))
                    .is_compatible(&target)
            };
            if justifiable {
                rare_nets.push(*r);
                kept_candidate_idx.push(ci);
            }
        }
        let n = rare_nets.len();
        stats.kept_rare_nets = n;
        stats.pairs_total = (n * n.saturating_sub(1) / 2) as u64;
        let mut adjacency = vec![false; n * n];
        // Retained for downstream witness-pattern reuse — a funnel
        // capability. All-SAT builds model the paper's baseline (and serve
        // as its cost reference), so they neither reuse witnesses nor pay
        // for copying the bank's rows.
        let witnesses = match strategy {
            CompatStrategy::Funnel(_) => analysis.witnesses().cloned(),
            CompatStrategy::AllSat => None,
        };
        if n == 0 {
            if let Some(oracle) = &singleton_oracle {
                stats.solver.merge(&oracle.solver_stats());
            }
            return Self {
                rare_nets,
                adjacency,
                stats,
                witnesses,
                witness_rows: kept_candidate_idx,
            };
        }

        // ── Tier 1: joint simulation witnesses. ────────────────────────────
        // Pair-chunk parallel word-AND sweep; each pair's verdict is a pure
        // function of the bank, so the chunked merge is order-exact.
        let tier1_start = Instant::now();
        let pairs: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|i| ((i + 1)..n as u32).map(move |j| (i, j)))
            .collect();
        let mut unresolved: Vec<(usize, usize)> = Vec::with_capacity(pairs.len());
        if let Some(bank) = bank {
            let sweep = |&(i, j): &(u32, u32)| {
                bank.pair_witnessed(
                    kept_candidate_idx[i as usize],
                    kept_candidate_idx[j as usize],
                )
            };
            let witnessed: Vec<bool> = if pairs.len() >= TIER1_PARALLEL_MIN_PAIRS {
                exec.par_map(&pairs, |_, pair| sweep(pair))
            } else {
                pairs.iter().map(sweep).collect()
            };
            for (&(i, j), hit) in pairs.iter().zip(witnessed) {
                let (i, j) = (i as usize, j as usize);
                if hit {
                    adjacency[i * n + j] = true;
                    adjacency[j * n + i] = true;
                    stats.pairs_sim_witnessed += 1;
                } else {
                    unresolved.push((i, j));
                }
            }
        } else {
            unresolved.extend(pairs.iter().map(|&(i, j)| (i as usize, j as usize)));
        }
        stats.tier1_nanos = tier1_start.elapsed().as_nanos() as u64;

        // ── Tier 2: disjoint cone supports, then bounded enumeration. ──────
        let tier2_start = Instant::now();
        if funnel.structural_pruning && !unresolved.is_empty() {
            let roots: Vec<NetId> = rare_nets.iter().map(|r| r.net).collect();
            let supports = InputSupports::compute(netlist, &roots);
            unresolved.retain(|&(i, j)| {
                if supports.disjoint(i, j) {
                    // Both nets are individually justifiable (singleton stage)
                    // over disjoint inputs, so the partial patterns merge.
                    adjacency[i * n + j] = true;
                    adjacency[j * n + i] = true;
                    stats.pairs_structurally_pruned += 1;
                    false
                } else {
                    true
                }
            });
        }
        // ── Self-tuning probe: resolve a deterministic prefix of the
        // unresolved pairs by SAT on the calling thread, measuring the
        // solver's counters against each pair's union cone size, and fit the
        // adaptive cost model from the samples. Sequential by design — the
        // fitted constants (and with them the enumerate/SAT split) must be
        // identical at every thread count.
        let budget = if let EnumerationBudget::SelfTuning {
            probe_pairs,
            max_support,
        } = configured_budget
        {
            // Only pairs the *calibrated* model already sends to SAT are
            // probed. Because the fitted constants are clamped at or above
            // the calibrated ones (see `fit_enumeration_budget`), any pair
            // the calibrated model admits for enumeration is also admitted
            // by the fitted model — probing it would spend a SAT query on a
            // pair enumeration resolves for free. Probing only SAT-bound
            // pairs makes self-tuning free in query count: every probe
            // verdict replaces a tier-3 query that was coming anyway. The
            // scan prefix is bounded so an all-enumerable workload does not
            // pay a full extra cone-sizing sweep.
            let calibrated = match EnumerationBudget::adaptive() {
                EnumerationBudget::Adaptive {
                    sat_base_word_ops,
                    sat_per_gate_word_ops,
                    ..
                } => EnumerationBudget::Adaptive {
                    sat_base_word_ops,
                    sat_per_gate_word_ops,
                    max_support,
                },
                _ => unreachable!("adaptive() is the Adaptive variant"),
            };
            let scan_cap = (probe_pairs as usize).saturating_mul(32).max(256);
            let mut samples: Vec<(u64, u64)> = Vec::with_capacity(probe_pairs as usize);
            let mut probed = vec![false; unresolved.len()];
            let mut num_probed = 0usize;
            if probe_pairs > 0 && !unresolved.is_empty() {
                let oracle = singleton_oracle.get_or_insert_with(|| {
                    PairOracle::new(netlist, funnel.cone_sat, funnel.solver)
                });
                for (idx, &(i, j)) in unresolved.iter().enumerate().take(scan_cap) {
                    if num_probed >= probe_pairs as usize {
                        break;
                    }
                    let targets = [
                        (rare_nets[i].net, rare_nets[i].rare_value),
                        (rare_nets[j].net, rare_nets[j].rare_value),
                    ];
                    // Measure the union cone without enumerating it (the
                    // admit closure declines the query after recording).
                    // The closure is not called when the union support
                    // exceeds the simulator ceiling — such pairs are
                    // SAT-bound under any fitted constants (no cone sample,
                    // but the verdict still counts).
                    let mut measured: Option<(u32, usize)> = None;
                    if let Some(cs) = cone_sim.as_mut() {
                        let _ = cs.decide_if(&targets, |support, cone| {
                            measured = Some((support, cone));
                            false
                        });
                    }
                    if let Some((support, cone)) = measured {
                        if calibrated.admits(support, cone) {
                            continue; // enumeration resolves this pair for free
                        }
                    }
                    let before = oracle.solver_stats();
                    let compatible = oracle.is_compatible(&targets);
                    let after = oracle.solver_stats();
                    adjacency[i * n + j] = compatible;
                    adjacency[j * n + i] = compatible;
                    stats.pairs_sat_resolved += 1;
                    stats.budget_probe_queries += 1;
                    probed[idx] = true;
                    num_probed += 1;
                    if let Some((_, cone)) = measured {
                        samples.push((
                            cone as u64,
                            probe_cost_word_ops(
                                after.decisions - before.decisions,
                                after.propagations - before.propagations,
                            ),
                        ));
                    }
                }
                if num_probed > 0 {
                    let mut idx = 0;
                    unresolved.retain(|_| {
                        let keep = !probed[idx];
                        idx += 1;
                        keep
                    });
                }
            }
            let (base, per_gate) = fit_enumeration_budget(&samples);
            stats.budget_self_tuned = true;
            EnumerationBudget::Adaptive {
                sat_base_word_ops: base,
                sat_per_gate_word_ops: per_gate,
                max_support,
            }
        } else {
            configured_budget
        };
        if let EnumerationBudget::Adaptive {
            sat_base_word_ops,
            sat_per_gate_word_ops,
            ..
        } = budget
        {
            stats.budget_sat_base_word_ops = sat_base_word_ops;
            stats.budget_sat_per_gate_word_ops = sat_per_gate_word_ops;
        }

        if cone_sim.is_some() && !unresolved.is_empty() {
            // Enumeration is the funnel's dominant SAT-free cost (up to
            // `2^ceiling` packed assignments per pair), so it fans out across
            // pair chunks with one scratch ConeSimulator per worker. Each
            // verdict depends only on its pair — the merge is order-exact.
            let ceiling = budget.support_ceiling();
            let verdicts: Vec<Option<bool>> = exec.par_map_with(
                &unresolved,
                || ConeSimulator::new(netlist, ceiling),
                |cone_sim, _, &(i, j)| {
                    cone_sim.decide_if(
                        &[
                            (rare_nets[i].net, rare_nets[i].rare_value),
                            (rare_nets[j].net, rare_nets[j].rare_value),
                        ],
                        |k, cone| budget.admits(k, cone),
                    )
                },
            );
            let mut verdicts = verdicts.into_iter();
            unresolved.retain(
                |&(i, j)| match verdicts.next().expect("one verdict per pair") {
                    Some(compatible) => {
                        adjacency[i * n + j] = compatible;
                        adjacency[j * n + i] = compatible;
                        stats.pairs_cone_enumerated += 1;
                        false
                    }
                    None => true,
                },
            );
        }
        stats.tier2_nanos = tier2_start.elapsed().as_nanos() as u64;

        // ── Tier 3: SAT on the survivors. ──────────────────────────────────
        let tier3_start = Instant::now();
        stats.pairs_sat_resolved += unresolved.len() as u64;
        let results: Vec<(usize, usize, bool)> = if unresolved.is_empty() {
            Vec::new()
        } else if exec.threads() <= 1 || unresolved.len() < 64 {
            // Reuse the singleton/probe-stage oracle when one was built: its
            // encoding work and learned clauses carry over into the pairwise
            // queries.
            let oracle = singleton_oracle
                .get_or_insert_with(|| PairOracle::new(netlist, funnel.cone_sat, funnel.solver));
            unresolved
                .iter()
                .map(|&(i, j)| {
                    let compatible = oracle.is_compatible(&[
                        (rare_nets[i].net, rare_nets[i].rare_value),
                        (rare_nets[j].net, rare_nets[j].rare_value),
                    ]);
                    (i, j, compatible)
                })
                .collect()
        } else {
            // One worker's tier-3 output: pair verdicts plus its oracle's
            // aggregate CDCL counters.
            type RangeVerdicts = (Vec<(usize, usize, bool)>, SolverStats);
            let rare_nets = &rare_nets;
            let unresolved = &unresolved;
            let per_range: Vec<RangeVerdicts> = exec.par_ranges(unresolved.len(), move |range| {
                let mut oracle = PairOracle::new(netlist, funnel.cone_sat, funnel.solver);
                let verdicts = range
                    .map(|idx| {
                        let (i, j) = unresolved[idx];
                        let compatible = oracle.is_compatible(&[
                            (rare_nets[i].net, rare_nets[i].rare_value),
                            (rare_nets[j].net, rare_nets[j].rare_value),
                        ]);
                        (i, j, compatible)
                    })
                    .collect::<Vec<_>>();
                (verdicts, oracle.solver_stats())
            });
            let mut flat = Vec::with_capacity(unresolved.len());
            for (verdicts, solver) in per_range {
                flat.extend(verdicts);
                stats.solver.merge(&solver);
            }
            flat
        };
        for (i, j, compatible) in results {
            adjacency[i * n + j] = compatible;
            adjacency[j * n + i] = compatible;
        }
        stats.tier3_nanos = tier3_start.elapsed().as_nanos() as u64;
        if let Some(oracle) = &singleton_oracle {
            stats.solver.merge(&oracle.solver_stats());
        }

        Self {
            rare_nets,
            adjacency,
            stats,
            witnesses,
            witness_rows: kept_candidate_idx,
        }
    }

    /// The rare nets the graph is defined over, in analysis order.
    #[must_use]
    pub fn rare_nets(&self) -> &[RareNet] {
        &self.rare_nets
    }

    /// Number of rare nets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rare_nets.len()
    }

    /// Returns `true` when there are no rare nets.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rare_nets.is_empty()
    }

    /// Whether rare nets `i` and `j` are pairwise compatible.
    ///
    /// A net is not considered compatible with itself (adding a net twice is
    /// never useful).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    #[must_use]
    pub fn is_compatible(&self, i: usize, j: usize) -> bool {
        assert!(
            i < self.len() && j < self.len(),
            "rare-net index out of range"
        );
        i != j && self.adjacency[i * self.len() + j]
    }

    /// Whether `candidate` is pairwise compatible with every member of `set`.
    #[must_use]
    pub fn compatible_with_all(&self, set: &[usize], candidate: usize) -> bool {
        !set.contains(&candidate) && set.iter().all(|&m| self.is_compatible(m, candidate))
    }

    /// Degree (number of compatible partners) of rare net `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn degree(&self, i: usize) -> usize {
        assert!(i < self.len(), "rare-net index out of range");
        (0..self.len())
            .filter(|&j| self.is_compatible(i, j))
            .count()
    }

    /// Number of compatible (unordered) pairs.
    #[must_use]
    pub fn num_compatible_pairs(&self) -> usize {
        let n = self.len();
        (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .filter(|&(i, j)| self.is_compatible(i, j))
            .count()
    }

    /// The row-major adjacency matrix (for bit-exact comparisons between
    /// build strategies).
    #[must_use]
    pub fn adjacency(&self) -> &[bool] {
        &self.adjacency
    }

    /// How each singleton and pair was resolved.
    #[must_use]
    pub fn stats(&self) -> &CompatStats {
        &self.stats
    }

    /// Total SAT queries spent building the graph (singleton + pairwise).
    #[must_use]
    pub fn sat_queries(&self) -> u64 {
        self.stats.total_sat_queries()
    }

    /// The witness bank of the originating analysis, if one was retained.
    /// Rows are indexed by candidate position; translate graph indices with
    /// the mapping behind [`CompatibilityGraph::joint_witness_pattern`].
    #[must_use]
    pub fn witness_bank(&self) -> Option<&WitnessBank> {
        self.witnesses.as_ref()
    }

    /// A concrete simulated pattern observed to drive *every* rare net of
    /// `set` (indices into [`CompatibilityGraph::rare_nets`]) to its rare
    /// value at once, when the estimation run witnessed one and the bank can
    /// re-materialize its patterns. Such a pattern makes a SAT justification
    /// of the set unnecessary.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    #[must_use]
    pub fn joint_witness_pattern(&self, set: &[usize]) -> Option<TestPattern> {
        let bank = self.witnesses.as_ref()?;
        let rows: Vec<usize> = set.iter().map(|&i| self.witness_rows[i]).collect();
        let index = bank.set_witness_index(&rows)?;
        bank.pattern(index)
    }

    /// The `(net, rare_value)` targets of the rare nets selected by `set`
    /// (indices into [`CompatibilityGraph::rare_nets`]).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    #[must_use]
    pub fn targets(&self, set: &[usize]) -> Vec<(netlist::NetId, bool)> {
        set.iter()
            .map(|&i| (self.rare_nets[i].net, self.rare_nets[i].rare_value))
            .collect()
    }

    /// Codec support: the witness-bank row (candidate index in the
    /// originating analysis) of each kept rare net.
    pub(crate) fn witness_rows(&self) -> &[usize] {
        &self.witness_rows
    }

    /// Codec support: reassembles a graph from the raw parts exposed by
    /// [`CompatibilityGraph::rare_nets`], [`CompatibilityGraph::adjacency`],
    /// [`CompatibilityGraph::stats`], [`CompatibilityGraph::witness_bank`],
    /// and [`CompatibilityGraph::witness_rows`]. The caller is responsible
    /// for internal consistency (the disk-cache decoder validates lengths
    /// before calling).
    pub(crate) fn from_raw_parts(
        rare_nets: Vec<RareNet>,
        adjacency: Vec<bool>,
        stats: CompatStats,
        witnesses: Option<WitnessBank>,
        witness_rows: Vec<usize>,
    ) -> Self {
        Self {
            rare_nets,
            adjacency,
            stats,
            witnesses,
            witness_rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;
    use netlist::synth::BenchmarkProfile;

    #[test]
    fn graph_is_symmetric_and_irreflexive() {
        let nl = BenchmarkProfile::c2670().scaled(20).generate(7);
        let analysis = RareNetAnalysis::estimate(&nl, 0.15, 2048, 1);
        let graph = CompatibilityGraph::build(&nl, &analysis, 2);
        assert!(graph.len() <= analysis.len());
        for i in 0..graph.len() {
            assert!(!graph.is_compatible(i, i));
            for j in 0..graph.len() {
                assert_eq!(graph.is_compatible(i, j), graph.is_compatible(j, i));
            }
        }
    }

    #[test]
    fn parallel_and_serial_builds_agree() {
        let nl = BenchmarkProfile::c5315().scaled(40).generate(3);
        let analysis = RareNetAnalysis::estimate(&nl, 0.2, 2048, 2);
        let serial = CompatibilityGraph::build(&nl, &analysis, 1);
        let parallel = CompatibilityGraph::build(&nl, &analysis, 4);
        assert_eq!(serial.adjacency, parallel.adjacency);
    }

    /// The acceptance property of the funnel: every strategy and every tier
    /// combination produces the identical adjacency matrix.
    #[test]
    fn all_strategies_produce_identical_adjacency() {
        for (profile, seed) in [
            (BenchmarkProfile::c2670().scaled(20), 7u64),
            (BenchmarkProfile::c5315().scaled(40), 3u64),
        ] {
            let nl = profile.generate(seed);
            let analysis = RareNetAnalysis::estimate(&nl, 0.2, 2048, 5);
            let reference = CompatibilityGraph::build_with(
                &nl,
                &analysis,
                &CompatBuildOptions {
                    threads: 1,
                    strategy: CompatStrategy::AllSat,
                },
            );
            let variants = [
                FunnelOptions::default(),
                FunnelOptions {
                    sim_witnesses: false,
                    ..FunnelOptions::default()
                },
                FunnelOptions {
                    structural_pruning: false,
                    ..FunnelOptions::default()
                },
                FunnelOptions {
                    cone_sat: false,
                    ..FunnelOptions::default()
                },
                FunnelOptions {
                    enumeration: EnumerationBudget::FixedSupportLimit(18),
                    ..FunnelOptions::default()
                },
                FunnelOptions {
                    enumeration: EnumerationBudget::Disabled,
                    ..FunnelOptions::default()
                },
                // Pre-self-tuning default: fixed calibrated adaptive budget.
                FunnelOptions {
                    enumeration: EnumerationBudget::adaptive(),
                    ..FunnelOptions::default()
                },
                // Legacy solver: geometric restarts, no clause deletion.
                FunnelOptions {
                    solver: SolverConfig::legacy(),
                    ..FunnelOptions::default()
                },
                // Self-tuning with a different probe count, on the legacy
                // solver: fitted constants differ, verdicts must not.
                FunnelOptions {
                    enumeration: EnumerationBudget::SelfTuning {
                        probe_pairs: 3,
                        max_support: 26,
                    },
                    solver: SolverConfig::legacy(),
                    ..FunnelOptions::default()
                },
            ];
            for (v, funnel) in variants.into_iter().enumerate() {
                let graph = CompatibilityGraph::build_with(
                    &nl,
                    &analysis,
                    &CompatBuildOptions {
                        threads: 2,
                        strategy: CompatStrategy::Funnel(funnel),
                    },
                );
                assert_eq!(
                    graph.adjacency,
                    reference.adjacency,
                    "variant {v} diverged on {}",
                    nl.name()
                );
                assert_eq!(graph.rare_nets, reference.rare_nets);
            }
        }
    }

    #[test]
    fn adaptive_budget_scales_with_cone_size() {
        let budget = EnumerationBudget::adaptive();
        // A tiny cone affords deep enumeration…
        assert!(budget.admits(16, 20));
        // …but the same support is declined on a cone three orders larger,
        // where 2^16/64 · cone word ops dwarf one SAT query.
        assert!(!budget.admits(16, 50_000));
        // Small supports are always worth enumerating (≤ one chunk).
        assert!(budget.admits(6, 50_000));
        // The hard ceiling binds regardless of cone size.
        assert!(!budget.admits(27, 1));
        assert!(!EnumerationBudget::Disabled.admits(1, 1));
        assert!(EnumerationBudget::FixedSupportLimit(18).admits(18, usize::MAX));
        assert!(!EnumerationBudget::FixedSupportLimit(18).admits(19, 1));
        // The fixed knob dominates neither direction: adaptive enumerates
        // deeper than fixed-18 on small cones (2^19/64 · 25 ≈ 205k word ops,
        // under the SAT estimate)…
        assert!(budget.admits(19, 25));
        assert!(!EnumerationBudget::FixedSupportLimit(18).admits(19, 25));
        // …and declines within the fixed knob's range on big cones.
        assert!(!budget.admits(16, 50_000));
        assert!(EnumerationBudget::FixedSupportLimit(18).admits(16, 50_000));
    }

    #[test]
    fn budget_fit_recovers_affine_model_and_clamps() {
        // Exact affine samples: cost = 300_000 + 600·cone.
        let samples: Vec<(u64, u64)> = [100u64, 500, 2_000, 10_000]
            .iter()
            .map(|&g| (g, 300_000 + 600 * g))
            .collect();
        let (base, per_gate) = fit_enumeration_budget(&samples);
        assert!((299_000..=301_000).contains(&base), "base {base}");
        assert!((598..=602).contains(&per_gate), "per_gate {per_gate}");

        // Too few samples → calibrated defaults.
        assert_eq!(fit_enumeration_budget(&[]), (1 << 18, 256));
        assert_eq!(fit_enumeration_budget(&[(50, 1 << 20)]), (1 << 18, 256));

        // Degenerate (all cones equal) → default slope, fitted intercept.
        let (base, per_gate) = fit_enumeration_budget(&[(400, 1 << 19), (400, 1 << 19)]);
        assert_eq!(per_gate, 256);
        assert!((1 << 17..=1 << 22).contains(&base));

        // Wild slopes and intercepts clamp into the safe band — and the
        // floor is the calibrated default, so self-tuning can never grant
        // *less* enumeration than the calibrated model.
        let (base, per_gate) = fit_enumeration_budget(&[(1, 1 << 10), (2, 1 << 10)]);
        assert_eq!((base, per_gate), (1 << 18, 256));
        let (base, per_gate) =
            fit_enumeration_budget(&[(1, u64::from(u32::MAX)), (1_000_000, u64::MAX / 2)]);
        assert_eq!((base, per_gate), (1 << 22, 4096));
    }

    #[test]
    fn probe_cost_has_flat_floor_and_counter_terms() {
        assert_eq!(probe_cost_word_ops(0, 0), 1 << 16);
        assert_eq!(probe_cost_word_ops(10, 100), (1 << 16) + 7_680 + 2_400);
        // Saturates instead of overflowing.
        assert_eq!(probe_cost_word_ops(u64::MAX, u64::MAX), u64::MAX);
    }

    #[test]
    fn funnel_spends_fewer_sat_queries_than_all_sat() {
        let nl = BenchmarkProfile::c2670().scaled(20).generate(7);
        let analysis = RareNetAnalysis::estimate(&nl, 0.2, 8192, 5);
        let all_sat = CompatibilityGraph::build_with(
            &nl,
            &analysis,
            &CompatBuildOptions {
                threads: 1,
                strategy: CompatStrategy::AllSat,
            },
        );
        let funnel = CompatibilityGraph::build_with(&nl, &analysis, &CompatBuildOptions::default());
        assert_eq!(funnel.adjacency, all_sat.adjacency);
        assert!(
            funnel.sat_queries() < all_sat.sat_queries(),
            "funnel {} vs all-SAT {}",
            funnel.sat_queries(),
            all_sat.sat_queries()
        );
        // All-SAT resolves every pair with a query.
        assert_eq!(
            all_sat.stats().pairwise_sat_queries(),
            all_sat.stats().pairs_total
        );
    }

    #[test]
    fn stats_tiers_partition_the_pairs() {
        let nl = BenchmarkProfile::c5315().scaled(40).generate(9);
        let analysis = RareNetAnalysis::estimate(&nl, 0.2, 4096, 4);
        let graph = CompatibilityGraph::build(&nl, &analysis, 2);
        let s = graph.stats();
        assert_eq!(
            s.pairs_sim_witnessed
                + s.pairs_structurally_pruned
                + s.pairs_cone_enumerated
                + s.pairs_sat_resolved,
            s.pairs_total
        );
        assert_eq!(s.kept_rare_nets, graph.len());
        assert!(s.kept_rare_nets <= s.candidate_rare_nets);
        assert_eq!(
            s.singleton_sim_resolved + s.singleton_sat_queries,
            s.candidate_rare_nets as u64
        );
        assert!(s.kept_rare_nets <= s.candidate_rare_nets);
        assert!((0.0..=1.0).contains(&s.sat_free_pair_fraction()));
        // Every sim-witnessed pair is a compatible pair.
        assert!(graph.num_compatible_pairs() as u64 >= s.pairs_sim_witnessed);
    }

    #[test]
    fn singleton_sat_only_for_never_observed_nets() {
        // A rare net whose value was observed even once in simulation is
        // justifiable for free; only nets with estimated probability exactly
        // zero can need a singleton SAT query, and bounded cone enumeration
        // may discharge even those.
        let nl = BenchmarkProfile::c2670().scaled(20).generate(11);
        let analysis = RareNetAnalysis::estimate(&nl, 0.2, 2048, 6);
        let graph = CompatibilityGraph::build(&nl, &analysis, 1);
        let never_observed = analysis
            .rare_nets()
            .iter()
            .filter(|r| r.probability == 0.0)
            .count() as u64;
        assert!(graph.stats().singleton_sat_queries <= never_observed);
        assert_eq!(
            graph.stats().singleton_sim_resolved + graph.stats().singleton_sat_queries,
            analysis.len() as u64
        );
    }

    #[test]
    fn matches_direct_sat_queries() {
        let nl = BenchmarkProfile::c2670().scaled(25).generate(5);
        let analysis = RareNetAnalysis::estimate(&nl, 0.2, 2048, 3);
        let graph = CompatibilityGraph::build(&nl, &analysis, 1);
        let mut oracle = CircuitOracle::new(&nl);
        let rare = graph.rare_nets();
        for i in 0..graph.len().min(8) {
            for j in (i + 1)..graph.len().min(8) {
                let expect = oracle.is_compatible(&[
                    (rare[i].net, rare[i].rare_value),
                    (rare[j].net, rare[j].rare_value),
                ]);
                assert_eq!(graph.is_compatible(i, j), expect, "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn mutually_exclusive_rare_values_are_incompatible() {
        // In the majority circuit at threshold 0.45, both polarities of many
        // nets are not rare, but t_0_1_2=1 and the OR output maj=0 cannot hold
        // together (any satisfied AND3 term forces maj=1).
        let nl = samples::majority5();
        let analysis = RareNetAnalysis::exhaustive(&nl, 0.45);
        let graph = CompatibilityGraph::build(&nl, &analysis, 1);
        let t = nl.net_by_name("t_0_1_2").unwrap();
        let maj = nl.net_by_name("maj").unwrap();
        let ti = graph.rare_nets().iter().position(|r| r.net == t);
        let mi = graph.rare_nets().iter().position(|r| r.net == maj);
        if let (Some(ti), Some(mi)) = (ti, mi) {
            // t rare value is 1 (p=0.125); maj rare value is 0 (p=0.5)? maj has
            // p(1)=0.5 so it is not rare at 0.45; guard for that case.
            assert!(!graph.is_compatible(ti, mi) || graph.rare_nets()[mi].rare_value);
        }
        assert!(graph.num_compatible_pairs() <= graph.len() * (graph.len().saturating_sub(1)) / 2);
    }

    #[test]
    fn compatible_with_all_and_degree() {
        let nl = BenchmarkProfile::c2670().scaled(25).generate(9);
        let analysis = RareNetAnalysis::estimate(&nl, 0.2, 2048, 4);
        let graph = CompatibilityGraph::build(&nl, &analysis, 2);
        if graph.len() >= 3 {
            // A singleton set is compatible with any neighbour of its element.
            for j in 0..graph.len() {
                assert_eq!(
                    graph.compatible_with_all(&[0], j),
                    graph.is_compatible(0, j)
                );
            }
            // A member is never compatible with a set containing it.
            assert!(!graph.compatible_with_all(&[1], 1));
            let _ = graph.degree(0);
        }
        // Every pair is accounted for by exactly one tier.
        let s = graph.stats();
        assert_eq!(
            s.pairs_sim_witnessed
                + s.pairs_structurally_pruned
                + s.pairs_cone_enumerated
                + s.pairs_sat_resolved,
            s.pairs_total
        );
    }

    #[test]
    fn empty_analysis_gives_empty_graph() {
        let nl = samples::c17();
        // c17 NANDs have no nets below 0.15 — but be robust either way.
        let analysis = RareNetAnalysis::exhaustive(&nl, 0.01);
        let graph = CompatibilityGraph::build(&nl, &analysis, 4);
        assert!(graph.len() <= analysis.len());
        if graph.is_empty() {
            assert_eq!(graph.num_compatible_pairs(), 0);
        }
    }
}
