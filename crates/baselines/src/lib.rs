//! Baseline Trojan test-generation techniques.
//!
//! The DETERRENT evaluation (Table 2 and Figures 5–6) compares against four
//! other ways of producing test patterns. Each is reimplemented here behind
//! the common [`TestGenerator`] trait:
//!
//! * [`RandomPatterns`] — uniformly random patterns.
//! * [`Mero`] — MERO (CHES 2009): keep random patterns until every rare net
//!   has been activated at least `N` times.
//! * [`Tarmac`] — TARMAC (IEEE TCAD 2021): repeated maximal-clique sampling
//!   on the rare-net compatibility graph, one SAT-generated pattern per
//!   sampled clique.
//! * [`Tgrl`] — a reimplementation of the TGRL idea (ASP-DAC 2021): an RL
//!   agent whose states/actions are test patterns and probabilistic bit
//!   flips, guided by a rareness-weighted activation score. True to the
//!   original, it achieves good coverage only with a large number of
//!   patterns.
//! * [`Atpg`] — a stand-in for the commercial Synopsys TestMAX flow: SAT
//!   based single-stuck-at pattern generation with greedy compaction. Like
//!   the real tool it optimizes fault coverage, not rare-value combinations,
//!   and therefore shows poor trigger coverage.
//!
//! # Example
//!
//! Every technique takes the netlist plus its rare-net analysis and
//! returns test patterns, so they are interchangeable behind
//! [`TestGenerator`]:
//!
//! ```
//! use baselines::{RandomPatterns, TestGenerator};
//! use netlist::samples;
//! use sim::rare::RareNetAnalysis;
//!
//! let nl = samples::rare_chain(6);
//! let analysis = RareNetAnalysis::estimate(&nl, 0.1, 2048, 42);
//! let patterns = RandomPatterns::new(16, 7).generate(&nl, &analysis);
//! assert_eq!(patterns.len(), 16);
//! assert!(patterns.iter().all(|p| p.width() == nl.num_scan_inputs()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod atpg;
mod mero;
mod random;
mod tarmac;
mod tgrl;

pub use atpg::Atpg;
pub use mero::Mero;
pub use random::RandomPatterns;
pub use tarmac::Tarmac;
pub use tgrl::Tgrl;

use netlist::Netlist;
use sim::rare::RareNetAnalysis;
use sim::TestPattern;

/// A technique that produces test patterns for Trojan-trigger activation.
pub trait TestGenerator {
    /// Human-readable name used in benchmark tables.
    fn name(&self) -> &'static str;

    /// Generates test patterns for `netlist` given its rare-net analysis.
    fn generate(&mut self, netlist: &Netlist, analysis: &RareNetAnalysis) -> Vec<TestPattern>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::synth::BenchmarkProfile;

    /// Every baseline runs end-to-end on a small benchmark and produces
    /// patterns of the right width.
    #[test]
    fn all_baselines_produce_wellformed_patterns() {
        let nl = BenchmarkProfile::c2670().scaled(25).generate(4);
        let analysis = RareNetAnalysis::estimate(&nl, 0.2, 2048, 1);
        let mut generators: Vec<Box<dyn TestGenerator>> = vec![
            Box::new(RandomPatterns::new(20, 1)),
            Box::new(Mero::new(2, 200, 1)),
            Box::new(Tarmac::new(10, 1)),
            Box::new(Tgrl::new(30, 1)),
            Box::new(Atpg::new(1)),
        ];
        for g in &mut generators {
            let patterns = g.generate(&nl, &analysis);
            assert!(!patterns.is_empty(), "{} produced no patterns", g.name());
            for p in &patterns {
                assert_eq!(p.width(), nl.num_scan_inputs(), "{}", g.name());
            }
        }
    }
}
