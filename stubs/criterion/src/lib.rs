//! Offline stand-in for the subset of the `criterion` benchmarking API used
//! by this workspace (`criterion_group!`/`criterion_main!`, `bench_function`,
//! `Bencher::iter`, `Bencher::iter_batched`, `BatchSize`).
//!
//! Instead of criterion's statistical machinery it runs a short warm-up, then
//! `sample_size` timed samples, and prints min/median/mean per benchmark —
//! enough to compare implementations offline and to keep `cargo bench`
//! targets compiling and runnable.

#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for benchmark bodies.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How per-iteration setup output is batched in [`Bencher::iter_batched`].
/// The stub runs one setup per timed routine call regardless of the variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine input.
    SmallInput,
    /// Large routine input.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Timing collector passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, one sample per call, `sample_size` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (untimed).
        std_black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs produced by `setup`; setup time is not
    /// measured.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        std_black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{name:<44} (no samples)");
            return self;
        }
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{name:<44} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
            min,
            median,
            mean,
            samples.len()
        );
        self
    }
}

/// Declares a benchmark group: a function running each target against a
/// shared [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0usize;
        c.bench_function("stub/noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // One warm-up plus three samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default().sample_size(2);
        let mut setups = 0usize;
        c.bench_function("stub/batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 3);
    }
}
