//! Criterion benchmark comparing compatibility-graph construction strategies:
//! the all-SAT baseline vs the three-tier simulation-first funnel.

use criterion::{criterion_group, criterion_main, Criterion};
use deterrent_core::{CompatBuildOptions, CompatStrategy, CompatibilityGraph, FunnelOptions};
use netlist::synth::BenchmarkProfile;
use sim::rare::RareNetAnalysis;

fn setup() -> (netlist::Netlist, RareNetAnalysis) {
    let nl = BenchmarkProfile::c2670().scaled(20).generate(3);
    let analysis = RareNetAnalysis::estimate(&nl, 0.2, 8192, 3);
    (nl, analysis)
}

fn bench_strategies(c: &mut Criterion) {
    let (nl, analysis) = setup();
    c.bench_function("compat/all_sat_serial", |b| {
        b.iter(|| {
            CompatibilityGraph::build_with(
                &nl,
                &analysis,
                &CompatBuildOptions {
                    threads: 1,
                    strategy: CompatStrategy::AllSat,
                },
            )
        })
    });
    c.bench_function("compat/funnel_serial", |b| {
        b.iter(|| {
            CompatibilityGraph::build_with(
                &nl,
                &analysis,
                &CompatBuildOptions {
                    threads: 1,
                    strategy: CompatStrategy::Funnel(FunnelOptions::default()),
                },
            )
        })
    });
    c.bench_function("compat/funnel_4_threads", |b| {
        b.iter(|| {
            CompatibilityGraph::build_with(
                &nl,
                &analysis,
                &CompatBuildOptions {
                    threads: 4,
                    strategy: CompatStrategy::Funnel(FunnelOptions::default()),
                },
            )
        })
    });
    c.bench_function("compat/funnel_no_cone_sat", |b| {
        b.iter(|| {
            CompatibilityGraph::build_with(
                &nl,
                &analysis,
                &CompatBuildOptions {
                    threads: 1,
                    strategy: CompatStrategy::Funnel(FunnelOptions {
                        cone_sat: false,
                        ..FunnelOptions::default()
                    }),
                },
            )
        })
    });
}

criterion_group! {
    name = compat_funnel;
    config = Criterion::default().sample_size(10);
    targets = bench_strategies
}
criterion_main!(compat_funnel);
