//! A stand-in for industrial stuck-at ATPG (Synopsys TestMAX in the paper).

use netlist::{GateKind, Netlist};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sat::CircuitOracle;
use sim::rare::RareNetAnalysis;
use sim::{Simulator, TestPattern};

use crate::TestGenerator;

/// SAT-based single-stuck-at test generation with greedy compaction.
///
/// For every internal net the generator targets the two stuck-at faults by
/// justifying the opposite value on the net (fault *activation*). Faults
/// already activated by an earlier pattern are skipped, which compacts the
/// set the same way `run_atpg` does in its default configuration. Commercial
/// ATPG additionally requires fault-effect *propagation* to an output; that
/// extra constraint only shrinks the pattern set further and does not make
/// the tool any better at exciting rare *combinations*, which is the
/// behaviour this baseline needs to reproduce (TestMAX's trigger coverage in
/// Table 2 is the lowest of all techniques).
#[derive(Debug, Clone)]
pub struct Atpg {
    seed: u64,
}

impl Atpg {
    /// Creates the ATPG stand-in.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl TestGenerator for Atpg {
    fn name(&self) -> &'static str {
        "TestMAX (ATPG stand-in)"
    }

    fn generate(&mut self, netlist: &Netlist, _analysis: &RareNetAnalysis) -> Vec<TestPattern> {
        let mut oracle = CircuitOracle::new(netlist);
        let sim = Simulator::new(netlist);
        let width = netlist.num_scan_inputs();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut patterns: Vec<TestPattern> = Vec::new();

        // Fault list: (net, value-to-justify) — justifying value v on the net
        // activates the stuck-at-(1-v) fault.
        let mut pending: Vec<(netlist::NetId, bool)> = Vec::new();
        for (id, gate) in netlist.iter() {
            if matches!(gate.kind, GateKind::Input | GateKind::Dff) {
                continue;
            }
            pending.push((id, false));
            pending.push((id, true));
        }

        for (net, value) in pending {
            // Greedy compaction: skip faults already activated by an existing
            // pattern.
            let covered = patterns.iter().any(|p| sim.run(p).value(net) == value);
            if covered {
                continue;
            }
            if let Some(bits) = oracle.justify(&[(net, value)]) {
                let pattern = TestPattern::new(bits);
                if !patterns.contains(&pattern) {
                    patterns.push(pattern);
                }
            }
        }
        if patterns.is_empty() {
            patterns.push(TestPattern::random(width, &mut rng));
        }
        patterns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;
    use netlist::synth::BenchmarkProfile;

    #[test]
    fn covers_both_stuck_at_values_of_every_justifiable_net() {
        let nl = samples::c17();
        let analysis = RareNetAnalysis::exhaustive(&nl, 0.3);
        let mut gen = Atpg::new(1);
        let patterns = gen.generate(&nl, &analysis);
        assert!(!patterns.is_empty());
        let sim = Simulator::new(&nl);
        for (id, gate) in nl.iter() {
            if matches!(gate.kind, GateKind::Input) {
                continue;
            }
            for value in [false, true] {
                let covered = patterns.iter().any(|p| sim.run(p).value(id) == value);
                assert!(covered, "net {} value {value} uncovered", nl.net_name(id));
            }
        }
    }

    #[test]
    fn compaction_keeps_pattern_count_small() {
        let nl = BenchmarkProfile::c2670().scaled(30).generate(2);
        let analysis = RareNetAnalysis::estimate(&nl, 0.2, 1024, 1);
        let patterns = Atpg::new(1).generate(&nl, &analysis);
        // Far fewer patterns than 2 × (number of nets).
        assert!(patterns.len() < nl.num_logic_gates());
    }
}
