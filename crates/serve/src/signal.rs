//! SIGTERM/SIGINT → stop-flag plumbing for the daemon binary.
//!
//! The workspace has no `libc` crate, so this registers handlers through a
//! minimal FFI declaration of POSIX `signal(2)`. The handler does the only
//! async-signal-safe thing it needs to: set a static [`AtomicBool`] the
//! accept loop polls. This is the crate's single `unsafe` island — the
//! crate root is `deny(unsafe_code)` and only this module opts out.

use std::sync::atomic::{AtomicBool, Ordering};

/// POSIX signal number of `SIGINT` (interactive interrupt, Ctrl-C).
pub const SIGINT: i32 = 2;

/// POSIX signal number of `SIGTERM` (polite termination request).
pub const SIGTERM: i32 = 15;

/// The flag [`install_stop_handler`] wires the handlers to.
static STOP: AtomicBool = AtomicBool::new(false);

extern "C" fn on_stop_signal(_signum: i32) {
    STOP.store(true, Ordering::SeqCst);
}

#[allow(unsafe_code)]
mod ffi {
    extern "C" {
        /// POSIX `signal(2)`. The handler is passed as a plain address —
        /// the only values this module ever passes are
        /// `extern "C" fn(i32)` pointers, which is exactly the ABI
        /// `signal` expects.
        pub(super) fn signal(signum: i32, handler: usize) -> usize;
    }

    pub(super) fn install(signum: i32, handler: extern "C" fn(i32)) {
        // SAFETY: `handler` is an `extern "C" fn(i32)` whose body only
        // performs an atomic store — async-signal-safe — and the
        // registration itself has no preconditions beyond a valid
        // handler address.
        unsafe {
            signal(signum, handler as usize);
        }
    }
}

/// Registers `SIGTERM` and `SIGINT` handlers that set a process-wide stop
/// flag, and returns that flag for the accept loop to poll. Idempotent.
pub fn install_stop_handler() -> &'static AtomicBool {
    ffi::install(SIGTERM, on_stop_signal);
    ffi::install(SIGINT, on_stop_signal);
    &STOP
}
