//! Figure 2: the four combinations of reward method (all-steps vs
//! end-of-episode) and action masking (with vs without) on the MIPS
//! benchmark — training rate (episodes/minute) and the maximum number of
//! compatible rare nets found.
//!
//! The four cells share one session grid: rare-net analysis and the
//! compatibility graph run once and are served from the shared artifact
//! store (asserted after the grid).

use deterrent_bench::{BenchInstance, HarnessOptions};
use deterrent_core::RewardMode;
use netlist::synth::BenchmarkProfile;

fn main() {
    let options = HarnessOptions::from_args();
    let instance = BenchInstance::prepare(&BenchmarkProfile::mips(), &options, 0.1);
    println!(
        "Figure 2 — reward x masking ablation on {} ({} rare nets)\n",
        instance.name,
        instance.analysis.len()
    );
    println!(
        "{:<24} {:>14} {:>26}",
        "combination", "eps./minute", "max #compatible rare nets"
    );

    let combos = [
        ("All rew + NM", RewardMode::AllSteps, false),
        ("All rew + M", RewardMode::AllSteps, true),
        ("Eoe rew + NM", RewardMode::EndOfEpisode, false),
        ("Eoe rew + M", RewardMode::EndOfEpisode, true),
    ];
    let mut best: Option<(&str, usize)> = None;
    for (label, reward_mode, masking) in combos {
        let config = options
            .deterrent_config()
            .with_ablation(reward_mode, masking);
        let result = instance.run_deterrent(config);
        println!(
            "{:<24} {:>14.2} {:>26}",
            label, result.metrics.episodes_per_minute, result.metrics.max_compatible_set
        );
        if best.is_none_or(|(_, b)| result.metrics.max_compatible_set > b) {
            best = Some((label, result.metrics.max_compatible_set));
        }
    }
    instance.assert_offline_reuse(combos.len());
    println!("\n(offline stages shared: analysis and graph computed once for all four cells ✓)");
    if let Some((label, size)) = best {
        println!(
            "Best architecture: {label} with {size} compatible rare nets \
             (paper: all-steps reward with masking)."
        );
    }
    instance.finish(&options);
}
