//! High-level justification oracle used by the DETERRENT pipeline.

use netlist::{NetId, Netlist};

use crate::encoder::CircuitEncoder;
use crate::solver::{SolveResult, Solver};
use crate::types::Lit;

/// Answers "is there an input pattern that drives these nets to these
/// values?" queries against one netlist.
///
/// The oracle encodes the netlist once and keeps a single incremental
/// [`Solver`] alive across queries, so the learned clauses from earlier
/// compatibility checks speed up later ones — this mirrors how the paper
/// amortizes its offline SAT work.
///
/// Returned patterns are assignments to [`netlist::Netlist::scan_inputs`] in
/// that order (primary inputs first, then scan flip-flops), i.e. the same
/// convention as `sim::TestPattern`.
#[derive(Debug)]
pub struct CircuitOracle {
    encoder: CircuitEncoder,
    solver: Solver,
    scan_inputs: Vec<NetId>,
    queries: u64,
}

impl CircuitOracle {
    /// Builds the oracle for `netlist` (performs the Tseitin encoding).
    #[must_use]
    pub fn new(netlist: &Netlist) -> Self {
        let encoder = CircuitEncoder::new(netlist);
        let solver = Solver::from_cnf(encoder.cnf());
        Self {
            encoder,
            solver,
            scan_inputs: netlist.scan_inputs(),
            queries: 0,
        }
    }

    /// Number of scan inputs (width of returned patterns).
    #[must_use]
    pub fn pattern_width(&self) -> usize {
        self.scan_inputs.len()
    }

    /// Number of justification queries answered so far.
    #[must_use]
    pub fn num_queries(&self) -> u64 {
        self.queries
    }

    /// Searches for a scan-input assignment that simultaneously drives every
    /// `(net, value)` pair in `targets`. Returns the pattern bits (in
    /// scan-input order) or `None` when the targets are jointly
    /// unjustifiable.
    pub fn justify(&mut self, targets: &[(NetId, bool)]) -> Option<Vec<bool>> {
        self.queries += 1;
        let assumptions: Vec<Lit> = targets
            .iter()
            .map(|&(net, value)| self.encoder.lit(net, value))
            .collect();
        match self.solver.solve(&assumptions) {
            SolveResult::Sat(model) => Some(
                self.scan_inputs
                    .iter()
                    .map(|&si| model[self.encoder.var(si).index()])
                    .collect(),
            ),
            SolveResult::Unsat => None,
        }
    }

    /// Returns `true` when an input pattern exists that drives every target
    /// simultaneously (the paper's *compatibility* relation).
    pub fn is_compatible(&mut self, targets: &[(NetId, bool)]) -> bool {
        self.justify(targets).is_some()
    }

    /// The underlying encoder (for advanced uses such as adding side
    /// constraints to a standalone solver).
    #[must_use]
    pub fn encoder(&self) -> &CircuitEncoder {
        &self.encoder
    }

    /// Accumulated solver statistics.
    #[must_use]
    pub fn solver_stats(&self) -> crate::SolverStats {
        self.solver.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;
    use netlist::synth::BenchmarkProfile;
    use sim::{Simulator, TestPattern};

    #[test]
    fn justify_rare_chain_root() {
        let nl = samples::rare_chain(5);
        let mut oracle = CircuitOracle::new(&nl);
        let root = nl.net_by_name("and4").unwrap();
        let bits = oracle.justify(&[(root, true)]).expect("SAT");
        assert!(bits.iter().all(|&b| b));
        assert_eq!(oracle.pattern_width(), 5);
        assert_eq!(oracle.num_queries(), 1);
    }

    #[test]
    fn justified_patterns_verify_in_simulation() {
        let nl = BenchmarkProfile::c2670().scaled(20).generate(8);
        let analysis = sim::rare::RareNetAnalysis::estimate(&nl, 0.2, 2048, 3);
        let mut oracle = CircuitOracle::new(&nl);
        let sim = Simulator::new(&nl);
        let mut justified = 0;
        for rare in analysis.rare_nets().iter().take(10) {
            if let Some(bits) = oracle.justify(&[(rare.net, rare.rare_value)]) {
                let pattern = TestPattern::new(bits);
                assert!(
                    sim.activates(&pattern, &[(rare.net, rare.rare_value)]),
                    "SAT pattern must activate {}",
                    nl.net_name(rare.net)
                );
                justified += 1;
            }
        }
        assert!(justified > 0, "at least one rare net should be justifiable");
    }

    #[test]
    fn impossible_targets_are_rejected() {
        let nl = samples::c17();
        let mut oracle = CircuitOracle::new(&nl);
        let g10 = nl.net_by_name("G10").unwrap();
        let g1 = nl.net_by_name("G1").unwrap();
        // G10 = NAND(G1, G3) = 0 forces G1 = 1.
        assert!(!oracle.is_compatible(&[(g10, false), (g1, false)]));
        assert!(oracle.is_compatible(&[(g10, false), (g1, true)]));
    }

    #[test]
    fn incremental_queries_reuse_solver() {
        let nl = samples::majority5();
        let mut oracle = CircuitOracle::new(&nl);
        let maj = nl.net_by_name("maj").unwrap();
        for _ in 0..5 {
            assert!(oracle.is_compatible(&[(maj, true)]));
            assert!(oracle.is_compatible(&[(maj, false)]));
        }
        assert_eq!(oracle.num_queries(), 10);
    }

    #[test]
    fn conflicting_same_net_targets_unsat() {
        let nl = samples::c17();
        let mut oracle = CircuitOracle::new(&nl);
        let g22 = nl.net_by_name("G22").unwrap();
        assert!(!oracle.is_compatible(&[(g22, true), (g22, false)]));
    }
}
