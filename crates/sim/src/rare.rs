//! Rare-net extraction — step ❶ of the DETERRENT flow.
//!
//! A net is *rare* at threshold `θ` when the probability of its less likely
//! logic value is strictly below `θ` under uniformly random input patterns.
//! Rare nets are the candidate trigger nets an adversary would pick, and they
//! form the action space of the DETERRENT RL agent.

use exec::Exec;
use netlist::{GateKind, NetId, Netlist};

use crate::compact::estimate_compacting_with;
use crate::witness::{PatternSource, WitnessBank};
use crate::SignalProbabilities;

/// A rare net: the net id, the rare logic value, and its estimated
/// probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RareNet {
    /// The rare net.
    pub net: NetId,
    /// The logic value the net rarely takes (the trigger value).
    pub rare_value: bool,
    /// Estimated probability of the net taking `rare_value`.
    pub probability: f64,
}

/// Result of rare-net analysis on one netlist at one threshold.
#[derive(Debug, Clone)]
pub struct RareNetAnalysis {
    threshold: f64,
    rare_nets: Vec<RareNet>,
    probabilities: SignalProbabilities,
    /// `(net, position)` pairs sorted by net id for O(log n) lookup.
    by_net: Vec<(NetId, u32)>,
    /// Witness bitmaps of the estimation run, one row per rare net (in
    /// `rare_nets` order); `None` when built from external probabilities.
    witnesses: Option<WitnessBank>,
}

impl RareNetAnalysis {
    /// Runs rare-net analysis with Monte-Carlo probability estimation using
    /// `num_patterns` random patterns and the given `seed`.
    ///
    /// Only internal combinational nets are considered (primary inputs and
    /// scan flip-flop outputs are controllable directly, so an adversary gains
    /// no stealth from using them, and prior work excludes them too).
    ///
    /// The packed simulation words of the estimation run are retained per
    /// rare net as a [`WitnessBank`], so downstream passes (the compatibility
    /// funnel) can resolve pairwise queries without SAT. The bank is
    /// harvested *during* the estimation pass with streaming compaction (see
    /// [`RareNetEstimate`]), so no pattern is ever simulated twice and
    /// witness memory stays proportional to the rare-net count rather than
    /// the design size.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not in `(0, 0.5]` or `num_patterns` is zero.
    #[must_use]
    pub fn estimate(netlist: &Netlist, threshold: f64, num_patterns: usize, seed: u64) -> Self {
        Self::estimate_with(netlist, threshold, num_patterns, seed, &Exec::serial())
    }

    /// Like [`RareNetAnalysis::estimate`], but runs the single estimation
    /// pass in parallel on `exec`. Bit-identical to the serial path at any
    /// thread count (the pattern stream is seed-split per 64-pattern chunk).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not in `(0, 0.5]` or `num_patterns` is zero.
    #[must_use]
    pub fn estimate_with(
        netlist: &Netlist,
        threshold: f64,
        num_patterns: usize,
        seed: u64,
        exec: &Exec,
    ) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 0.5,
            "rareness threshold must be in (0, 0.5]"
        );
        RareNetEstimate::estimate_with(netlist, threshold, num_patterns, seed, exec)
            .threshold(threshold)
    }

    /// Runs rare-net analysis using exhaustive (exact) probabilities; only
    /// feasible for small circuits. Witnesses are retained as in
    /// [`RareNetAnalysis::estimate`].
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not in `(0, 0.5]` or the netlist has more than
    /// 24 scan inputs.
    #[must_use]
    pub fn exhaustive(netlist: &Netlist, threshold: f64) -> Self {
        let (probabilities, trace) = SignalProbabilities::exhaustive_retaining(netlist);
        let mut analysis = Self::from_probabilities(netlist, threshold, probabilities);
        analysis.witnesses = Some(
            WitnessBank::from_trace(&trace, &analysis.targets()).with_source(
                PatternSource::Exhaustive {
                    width: netlist.num_scan_inputs(),
                },
            ),
        );
        analysis
    }

    /// Builds the analysis from precomputed probabilities. No witness bank is
    /// attached (there was no simulation run to mine).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not in `(0, 0.5]`.
    #[must_use]
    pub fn from_probabilities(
        netlist: &Netlist,
        threshold: f64,
        probabilities: SignalProbabilities,
    ) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 0.5,
            "rareness threshold must be in (0, 0.5]"
        );
        let rare_nets = collect_rare(netlist, threshold, &probabilities);
        let mut by_net: Vec<(NetId, u32)> = rare_nets
            .iter()
            .enumerate()
            .map(|(pos, r)| (r.net, pos as u32))
            .collect();
        by_net.sort_unstable_by_key(|&(net, _)| net);
        Self {
            threshold,
            rare_nets,
            probabilities,
            by_net,
            witnesses: None,
        }
    }

    /// The rareness threshold used.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The rare nets, sorted by increasing probability.
    #[must_use]
    pub fn rare_nets(&self) -> &[RareNet] {
        &self.rare_nets
    }

    /// Number of rare nets found.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rare_nets.len()
    }

    /// Returns `true` when no net is rare at the threshold.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rare_nets.is_empty()
    }

    /// The `(net, rare_value)` pairs, convenient for SAT justification calls.
    #[must_use]
    pub fn targets(&self) -> Vec<(NetId, bool)> {
        self.rare_nets
            .iter()
            .map(|r| (r.net, r.rare_value))
            .collect()
    }

    /// The underlying signal probabilities.
    #[must_use]
    pub fn probabilities(&self) -> &SignalProbabilities {
        &self.probabilities
    }

    /// Looks up the rare-net record for `net`, if it is rare.
    ///
    /// O(log n) via an index sorted by net id (the `rare_nets` list itself is
    /// sorted by probability, so it cannot be searched directly).
    #[must_use]
    pub fn find(&self, net: NetId) -> Option<&RareNet> {
        self.by_net
            .binary_search_by_key(&net, |&(n, _)| n)
            .ok()
            .map(|i| &self.rare_nets[self.by_net[i].1 as usize])
    }

    /// Position of `net` in [`RareNetAnalysis::rare_nets`], if it is rare.
    #[must_use]
    pub fn position(&self, net: NetId) -> Option<usize> {
        self.by_net
            .binary_search_by_key(&net, |&(n, _)| n)
            .ok()
            .map(|i| self.by_net[i].1 as usize)
    }

    /// Witness bitmaps harvested from the estimation run (one row per rare
    /// net, in `rare_nets` order), or `None` when the analysis was built from
    /// external probabilities.
    #[must_use]
    pub fn witnesses(&self) -> Option<&WitnessBank> {
        self.witnesses.as_ref()
    }

    /// Rebuilds an analysis from its raw parts — the inverse of
    /// [`RareNetAnalysis::threshold`] / [`RareNetAnalysis::rare_nets`] /
    /// [`RareNetAnalysis::probabilities`] / [`RareNetAnalysis::witnesses`].
    /// The by-net lookup index is rederived; `rare_nets` must already be in
    /// the canonical order (rarest first, ties by net id) an estimation run
    /// produces. Exists so callers persisting an analysis (e.g. a disk-backed
    /// artifact cache) can round-trip it bit-exactly without a serde
    /// dependency.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not in `(0, 0.5]`.
    #[must_use]
    pub fn from_raw_parts(
        threshold: f64,
        rare_nets: Vec<RareNet>,
        probabilities: SignalProbabilities,
        witnesses: Option<WitnessBank>,
    ) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 0.5,
            "rareness threshold must be in (0, 0.5]"
        );
        let mut by_net: Vec<(NetId, u32)> = rare_nets
            .iter()
            .enumerate()
            .map(|(pos, r)| (r.net, pos as u32))
            .collect();
        by_net.sort_unstable_by_key(|&(net, _)| net);
        Self {
            threshold,
            rare_nets,
            probabilities,
            by_net,
            witnesses,
        }
    }
}

/// The rare nets of `netlist` at `threshold` in canonical order: rarest
/// first, ties by net id. Shared by [`RareNetAnalysis::from_probabilities`]
/// and [`RareNetEstimate`], so re-thresholding an estimate is guaranteed to
/// produce exactly the list a from-scratch analysis would.
fn collect_rare(
    netlist: &Netlist,
    threshold: f64,
    probabilities: &SignalProbabilities,
) -> Vec<RareNet> {
    let mut rare_nets = Vec::new();
    for (id, gate) in netlist.iter() {
        if matches!(gate.kind, GateKind::Input | GateKind::Dff) {
            continue;
        }
        let (rare_value, probability) = probabilities.rare_value(id);
        if probability < threshold {
            rare_nets.push(RareNet {
                net: id,
                rare_value,
                probability,
            });
        }
    }
    rare_nets.sort_by(|a, b| {
        a.probability
            .partial_cmp(&b.probability)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.net.cmp(&b.net))
    });
    rare_nets
}

/// The θ-independent half of rare-net analysis: estimated signal
/// probabilities plus a witness bank over every net that is rare at the
/// `retain` threshold, harvested in a single compacting simulation pass
/// ([`crate::compact`]).
///
/// Thresholding is a pure prefix operation: the candidate rows are stored
/// rarest-first, so [`RareNetEstimate::threshold`] at any `θ ≤ retain`
/// produces a [`RareNetAnalysis`] bit-identical to
/// [`RareNetAnalysis::estimate`] at that θ — without re-simulating anything.
/// A θ-sweep therefore pays for Monte-Carlo estimation exactly once per
/// (netlist, pattern budget, seed).
#[derive(Debug, Clone)]
pub struct RareNetEstimate {
    retain: f64,
    probabilities: SignalProbabilities,
    /// Witness rows for the rare-at-`retain` candidates, rarest-first.
    bank: WitnessBank,
    /// Candidate records in bank-row order (derived from the bank targets
    /// and the probabilities; kept denormalized for cheap prefix slicing).
    candidates: Vec<RareNet>,
    /// Memory high-water mark of the compacting pass, in packed words.
    peak_retained_words: usize,
}

impl RareNetEstimate {
    /// Runs the single-pass compacting estimation on the calling thread.
    ///
    /// # Panics
    ///
    /// Panics if `retain` is not in `(0, 0.5]` or `num_patterns` is zero.
    #[must_use]
    pub fn estimate(netlist: &Netlist, retain: f64, num_patterns: usize, seed: u64) -> Self {
        Self::estimate_with(netlist, retain, num_patterns, seed, &Exec::serial())
    }

    /// Like [`RareNetEstimate::estimate`], parallelized over `exec` with the
    /// standard bit-identical-at-any-thread-count guarantee.
    ///
    /// # Panics
    ///
    /// Panics if `retain` is not in `(0, 0.5]` or `num_patterns` is zero.
    #[must_use]
    pub fn estimate_with(
        netlist: &Netlist,
        retain: f64,
        num_patterns: usize,
        seed: u64,
        exec: &Exec,
    ) -> Self {
        let (probabilities, trace) =
            estimate_compacting_with(netlist, num_patterns, seed, retain, exec);
        let candidates = collect_rare(netlist, retain, &probabilities);
        let targets: Vec<(NetId, bool)> =
            candidates.iter().map(|r| (r.net, r.rare_value)).collect();
        let num_chunks = trace.num_chunks();
        let mut rows = Vec::with_capacity(targets.len() * num_chunks);
        for &(net, value) in &targets {
            for c in 0..num_chunks {
                let word = trace
                    .word(c, net)
                    .expect("every rare-at-retain net is retained by the compacting pass");
                rows.push(if value { word } else { !word });
            }
        }
        let bank = WitnessBank::from_raw_parts(
            targets,
            num_chunks,
            trace.num_patterns(),
            rows,
            Some(PatternSource::Random {
                width: netlist.num_scan_inputs(),
                seed,
            }),
        );
        Self {
            retain,
            probabilities,
            bank,
            candidates,
            peak_retained_words: trace.peak_words(),
        }
    }

    /// The retention threshold: the estimate can be re-thresholded at any
    /// `θ ≤ retain`.
    #[must_use]
    pub fn retain(&self) -> f64 {
        self.retain
    }

    /// The underlying signal probabilities.
    #[must_use]
    pub fn probabilities(&self) -> &SignalProbabilities {
        &self.probabilities
    }

    /// The candidate witness bank (every net rare at `retain`, rarest-first).
    #[must_use]
    pub fn bank(&self) -> &WitnessBank {
        &self.bank
    }

    /// Number of rare-at-`retain` candidate nets.
    #[must_use]
    pub fn num_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// Memory high-water mark of the compacting estimation pass, in packed
    /// 64-pattern words (see [`crate::compact::CompactTrace::peak_words`]).
    /// Zero when the estimate was decoded from a cache rather than computed.
    #[must_use]
    pub fn peak_retained_words(&self) -> usize {
        self.peak_retained_words
    }

    /// Thresholds the estimate at `theta`, producing the same
    /// [`RareNetAnalysis`] a from-scratch [`RareNetAnalysis::estimate`] at
    /// `theta` would — rare nets, probabilities, and witness rows all
    /// bit-identical — without any simulation.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is not in `(0, 0.5]` or exceeds the estimate's
    /// `retain` threshold (nets rare at such a θ may have been compacted
    /// away; re-estimate with a larger `retain` instead).
    #[must_use]
    pub fn threshold(&self, theta: f64) -> RareNetAnalysis {
        assert!(
            theta > 0.0 && theta <= 0.5,
            "rareness threshold must be in (0, 0.5]"
        );
        assert!(
            theta <= self.retain,
            "threshold {theta} exceeds the estimate's retention threshold {}",
            self.retain
        );
        // Candidates are sorted rarest-first, so the rare set at θ is a
        // prefix, and so are its bank rows.
        let k = self.candidates.partition_point(|r| r.probability < theta);
        let rare_nets = self.candidates[..k].to_vec();
        let num_chunks = self.bank.num_chunks();
        let witnesses = WitnessBank::from_raw_parts(
            self.bank.targets()[..k].to_vec(),
            num_chunks,
            self.bank.num_patterns(),
            self.bank.raw_rows()[..k * num_chunks].to_vec(),
            self.bank.source(),
        );
        RareNetAnalysis::from_raw_parts(
            theta,
            rare_nets,
            self.probabilities.clone(),
            Some(witnesses),
        )
    }

    /// Rebuilds an estimate from its raw parts — the inverse of
    /// [`RareNetEstimate::retain`] / [`RareNetEstimate::probabilities`] /
    /// [`RareNetEstimate::bank`]. The candidate records are rederived from
    /// the bank targets and the probabilities. Exists so callers persisting
    /// an estimate (e.g. a disk-backed artifact cache) can round-trip it
    /// bit-exactly without a serde dependency. `peak_retained_words` is not
    /// part of the round-trip (it describes the original computation, not
    /// the artifact) and is restored as zero.
    ///
    /// # Panics
    ///
    /// Panics if `retain` is not in `(0, 0.5]`.
    #[must_use]
    pub fn from_raw_parts(
        retain: f64,
        probabilities: SignalProbabilities,
        bank: WitnessBank,
    ) -> Self {
        assert!(
            retain > 0.0 && retain <= 0.5,
            "retention threshold must be in (0, 0.5]"
        );
        let candidates = bank
            .targets()
            .iter()
            .map(|&(net, rare_value)| RareNet {
                net,
                rare_value,
                probability: probabilities.rare_value(net).1,
            })
            .collect();
        Self {
            retain,
            probabilities,
            bank,
            candidates,
            peak_retained_words: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;
    use netlist::synth::BenchmarkProfile;

    #[test]
    fn rare_chain_root_is_rare() {
        let nl = samples::rare_chain(6);
        let analysis = RareNetAnalysis::exhaustive(&nl, 0.1);
        let root = nl.net_by_name("and5").unwrap();
        let rec = analysis.find(root).expect("root must be rare");
        assert!(rec.rare_value);
        assert!((rec.probability - 1.0 / 64.0).abs() < 1e-12);
        // The OR of all inputs is not rare at 0.1 (p0 = 1/64 is rare though!).
        let any = nl.net_by_name("any").unwrap();
        let any_rec = analysis.find(any).expect("p(any=0)=1/64 is rare");
        assert!(!any_rec.rare_value);
    }

    #[test]
    fn threshold_monotonicity() {
        let nl = BenchmarkProfile::c6288().scaled(10).generate(9);
        let loose = RareNetAnalysis::estimate(&nl, 0.14, 4096, 1);
        let tight = RareNetAnalysis::estimate(&nl, 0.10, 4096, 1);
        assert!(loose.len() >= tight.len());
        // Every net rare at the tight threshold is rare at the loose one.
        for r in tight.rare_nets() {
            assert!(loose.find(r.net).is_some());
        }
    }

    #[test]
    fn inputs_never_rare() {
        let nl = samples::c17();
        let analysis = RareNetAnalysis::exhaustive(&nl, 0.45);
        for &pi in nl.primary_inputs() {
            assert!(analysis.find(pi).is_none());
        }
    }

    #[test]
    fn majority_terms_rare_at_point14_not_point1() {
        let nl = samples::majority5();
        let at14 = RareNetAnalysis::exhaustive(&nl, 0.14);
        let at10 = RareNetAnalysis::exhaustive(&nl, 0.10);
        let term = nl.net_by_name("t_0_1_2").unwrap();
        assert!(at14.find(term).is_some(), "AND3 has p=0.125 < 0.14");
        assert!(at10.find(term).is_none(), "0.125 is not < 0.10");
    }

    #[test]
    fn synthetic_profiles_contain_rare_nets() {
        let nl = BenchmarkProfile::c2670().scaled(10).generate(4);
        let analysis = RareNetAnalysis::estimate(&nl, 0.1, 4096, 2);
        assert!(
            analysis.len() >= 4,
            "expected at least 4 rare nets, got {}",
            analysis.len()
        );
    }

    #[test]
    fn sorted_by_probability() {
        let nl = BenchmarkProfile::c2670().scaled(10).generate(4);
        let analysis = RareNetAnalysis::estimate(&nl, 0.1, 2048, 2);
        for w in analysis.rare_nets().windows(2) {
            assert!(w[0].probability <= w[1].probability);
        }
    }

    #[test]
    #[should_panic(expected = "rareness threshold")]
    fn bad_threshold_panics() {
        let nl = samples::c17();
        let _ = RareNetAnalysis::exhaustive(&nl, 0.7);
    }

    /// The pre-split construction: estimate probabilities, threshold, then
    /// replay the pattern stream to harvest witnesses for the rare nets.
    /// Kept only as the reference the single-pass path is compared against.
    fn legacy_two_pass(
        netlist: &Netlist,
        threshold: f64,
        num_patterns: usize,
        seed: u64,
        exec: &Exec,
    ) -> RareNetAnalysis {
        let probabilities = SignalProbabilities::estimate_with(netlist, num_patterns, seed, exec);
        let analysis = RareNetAnalysis::from_probabilities(netlist, threshold, probabilities);
        let witnesses =
            WitnessBank::harvest_with(netlist, &analysis.targets(), num_patterns, seed, exec);
        RareNetAnalysis::from_raw_parts(
            threshold,
            analysis.rare_nets().to_vec(),
            analysis.probabilities().clone(),
            Some(witnesses),
        )
    }

    fn assert_analyses_identical(a: &RareNetAnalysis, b: &RareNetAnalysis) {
        assert_eq!(a.threshold(), b.threshold());
        assert_eq!(a.rare_nets(), b.rare_nets());
        assert_eq!(a.probabilities().as_slice(), b.probabilities().as_slice());
        let (wa, wb) = (a.witnesses().unwrap(), b.witnesses().unwrap());
        assert_eq!(wa.targets(), wb.targets());
        assert_eq!(wa.num_patterns(), wb.num_patterns());
        assert_eq!(wa.raw_rows(), wb.raw_rows());
        assert_eq!(wa.source(), wb.source());
    }

    #[test]
    fn single_pass_estimate_matches_legacy_two_pass_bit_exactly() {
        let nl = BenchmarkProfile::c6288().scaled(10).generate(9);
        for theta in [0.10, 0.14] {
            let legacy = legacy_two_pass(&nl, theta, 2048, 1, &Exec::serial());
            let single = RareNetAnalysis::estimate(&nl, theta, 2048, 1);
            assert_analyses_identical(&legacy, &single);
        }
    }

    #[test]
    fn shared_estimate_rethresholds_to_per_theta_analyses() {
        let nl = BenchmarkProfile::c6288().scaled(10).generate(9);
        let estimate = RareNetEstimate::estimate(&nl, 0.14, 2048, 1);
        for theta in [0.10, 0.11, 0.12, 0.13, 0.14] {
            let direct = RareNetAnalysis::estimate(&nl, theta, 2048, 1);
            let shared = estimate.threshold(theta);
            assert_analyses_identical(&direct, &shared);
        }
        assert_eq!(estimate.num_candidates(), estimate.threshold(0.14).len());
    }

    #[test]
    fn estimate_is_bit_identical_across_thread_counts() {
        let nl = BenchmarkProfile::c2670().scaled(10).generate(4);
        let serial = RareNetEstimate::estimate(&nl, 0.12, 1024, 3);
        for threads in [2, 4] {
            let exec = Exec::new(threads);
            let parallel = RareNetEstimate::estimate_with(&nl, 0.12, 1024, 3, &exec);
            assert_eq!(
                serial.probabilities().as_slice(),
                parallel.probabilities().as_slice(),
                "{threads} threads"
            );
            assert_eq!(serial.bank().targets(), parallel.bank().targets());
            assert_eq!(serial.bank().raw_rows(), parallel.bank().raw_rows());
        }
    }

    #[test]
    fn estimate_round_trips_through_raw_parts() {
        let nl = BenchmarkProfile::c2670().scaled(10).generate(4);
        let estimate = RareNetEstimate::estimate(&nl, 0.12, 1024, 3);
        let rebuilt = RareNetEstimate::from_raw_parts(
            estimate.retain(),
            estimate.probabilities().clone(),
            estimate.bank().clone(),
        );
        let (a, b) = (estimate.threshold(0.1), rebuilt.threshold(0.1));
        assert_analyses_identical(&a, &b);
        assert_eq!(rebuilt.peak_retained_words(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds the estimate's retention threshold")]
    fn thresholding_above_retain_panics() {
        let nl = samples::c17();
        let estimate = RareNetEstimate::estimate(&nl, 0.1, 64, 1);
        let _ = estimate.threshold(0.2);
    }
}
