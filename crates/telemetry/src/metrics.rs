//! Typed metric registry: counters, gauges, and fixed-bucket latency
//! histograms, with a Prometheus-text snapshot exporter.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones of
//! atomics, so instrumented hot paths pay one relaxed atomic op per update
//! and never take the registry lock. A handle obtained from a *disabled*
//! [`crate::Telemetry`] is a no-op, which keeps call sites unconditional.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Upper bounds (inclusive, nanoseconds) of the fixed histogram buckets:
/// 1µs … 100s in decades, plus an implicit `+Inf` overflow bucket.
pub const LATENCY_BUCKET_BOUNDS_NS: [u64; 9] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
    100_000_000_000,
];

/// A monotonically increasing counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A handle that ignores all updates (used when telemetry is disabled).
    #[must_use]
    pub fn noop() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter.
    pub fn inc(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current value (0 for a no-op handle).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A gauge handle: a value that can move both ways.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicI64>>,
}

impl Gauge {
    /// A handle that ignores all updates (used when telemetry is disabled).
    #[must_use]
    pub fn noop() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        if let Some(cell) = &self.cell {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative) to the gauge.
    pub fn add(&self, delta: i64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// The current value (0 for a no-op handle).
    #[must_use]
    pub fn get(&self) -> i64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Default)]
struct HistogramCell {
    /// One count per bound in [`LATENCY_BUCKET_BOUNDS_NS`] plus `+Inf`.
    buckets: [AtomicU64; LATENCY_BUCKET_BOUNDS_NS.len() + 1],
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket latency histogram handle (nanosecond observations).
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    cell: Option<Arc<HistogramCell>>,
}

impl Histogram {
    /// A handle that ignores all updates (used when telemetry is disabled).
    #[must_use]
    pub fn noop() -> Self {
        Self::default()
    }

    /// Records one observation of `nanos`.
    pub fn observe_nanos(&self, nanos: u64) {
        let Some(cell) = &self.cell else { return };
        let idx = LATENCY_BUCKET_BOUNDS_NS
            .iter()
            .position(|&bound| nanos <= bound)
            .unwrap_or(LATENCY_BUCKET_BOUNDS_NS.len());
        cell.buckets[idx].fetch_add(1, Ordering::Relaxed);
        cell.sum.fetch_add(nanos, Ordering::Relaxed);
        cell.count.fetch_add(1, Ordering::Relaxed);
    }

    /// The number of observations (0 for a no-op handle).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// The sum of all observed nanoseconds (0 for a no-op handle).
    #[must_use]
    pub fn sum_nanos(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.sum.load(Ordering::Relaxed))
    }
}

/// A snapshot of one histogram, as captured by
/// [`MetricRegistry::histogram_snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (non-cumulative), `+Inf` last.
    pub buckets: Vec<u64>,
    /// Sum of all observed nanoseconds.
    pub sum_nanos: u64,
    /// Total number of observations.
    pub count: u64,
}

#[derive(Debug, Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCell>>>,
}

/// The shared metric registry behind a [`crate::Telemetry`] handle.
///
/// Metric names use dotted paths (`exec.calls`); [`render_text`]
/// sanitizes them to Prometheus identifiers (`exec_calls`).
///
/// [`render_text`]: MetricRegistry::render_text
#[derive(Debug, Clone, Default)]
pub struct MetricRegistry {
    inner: Arc<Registry>,
}

impl MetricRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (registering on first use) the counter named `name`.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock().expect("counter map poisoned");
        let cell = map.entry(name.to_string()).or_default();
        Counter {
            cell: Some(Arc::clone(cell)),
        }
    }

    /// Returns (registering on first use) the gauge named `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.gauges.lock().expect("gauge map poisoned");
        let cell = map.entry(name.to_string()).or_default();
        Gauge {
            cell: Some(Arc::clone(cell)),
        }
    }

    /// Returns (registering on first use) the histogram named `name`.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self
            .inner
            .histograms
            .lock()
            .expect("histogram map poisoned");
        let cell = map.entry(name.to_string()).or_default();
        Histogram {
            cell: Some(Arc::clone(cell)),
        }
    }

    /// A snapshot of every counter, in name order.
    #[must_use]
    pub fn counter_snapshot(&self) -> BTreeMap<String, u64> {
        let map = self.inner.counters.lock().expect("counter map poisoned");
        map.iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect()
    }

    /// A snapshot of every gauge, in name order.
    #[must_use]
    pub fn gauge_snapshot(&self) -> BTreeMap<String, i64> {
        let map = self.inner.gauges.lock().expect("gauge map poisoned");
        map.iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect()
    }

    /// A snapshot of every histogram, in name order.
    #[must_use]
    pub fn histogram_snapshot(&self) -> BTreeMap<String, HistogramSnapshot> {
        let map = self
            .inner
            .histograms
            .lock()
            .expect("histogram map poisoned");
        map.iter()
            .map(|(name, cell)| {
                (
                    name.clone(),
                    HistogramSnapshot {
                        buckets: cell
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                        sum_nanos: cell.sum.load(Ordering::Relaxed),
                        count: cell.count.load(Ordering::Relaxed),
                    },
                )
            })
            .collect()
    }

    /// Renders every metric in the Prometheus text exposition format.
    ///
    /// Dotted metric names are sanitized (`.` → `_`); histogram buckets are
    /// cumulative with `le` labels in seconds, per convention.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.counter_snapshot() {
            let id = sanitize(&name);
            let _ = writeln!(out, "# TYPE {id} counter");
            let _ = writeln!(out, "{id} {value}");
        }
        for (name, value) in self.gauge_snapshot() {
            let id = sanitize(&name);
            let _ = writeln!(out, "# TYPE {id} gauge");
            let _ = writeln!(out, "{id} {value}");
        }
        for (name, snap) in self.histogram_snapshot() {
            let id = sanitize(&name);
            let _ = writeln!(out, "# TYPE {id} histogram");
            let mut cumulative = 0u64;
            for (i, count) in snap.buckets.iter().enumerate() {
                cumulative += count;
                let le = LATENCY_BUCKET_BOUNDS_NS
                    .get(i)
                    .map_or("+Inf".to_string(), |&ns| format!("{}", ns as f64 / 1e9));
                let _ = writeln!(out, "{id}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{id}_sum {}", snap.sum_nanos as f64 / 1e9);
            let _ = writeln!(out, "{id}_count {}", snap.count);
        }
        out
    }
}

/// Maps a dotted metric name to a valid Prometheus identifier.
fn sanitize(name: &str) -> String {
    let mut id: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if id.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        id.insert(0, '_');
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_cells_by_name() {
        let registry = MetricRegistry::new();
        let a = registry.counter("exec.calls");
        let b = registry.counter("exec.calls");
        a.inc(3);
        b.inc(4);
        assert_eq!(a.get(), 7);
        assert_eq!(registry.counter_snapshot()["exec.calls"], 7);
    }

    #[test]
    fn noop_handles_ignore_updates() {
        let c = Counter::noop();
        c.inc(5);
        assert_eq!(c.get(), 0);
        let h = Histogram::noop();
        h.observe_nanos(1);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn histogram_buckets_and_render() {
        let registry = MetricRegistry::new();
        let h = registry.histogram("stage.wall_nanos");
        h.observe_nanos(500); // ≤ 1µs bucket
        h.observe_nanos(2_000_000); // ≤ 10ms bucket
        h.observe_nanos(u64::MAX / 2); // +Inf bucket
        let snap = &registry.histogram_snapshot()["stage.wall_nanos"];
        assert_eq!(snap.count, 3);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[LATENCY_BUCKET_BOUNDS_NS.len()], 1);

        registry.gauge("pool.threads").set(4);
        registry.counter("exec.calls").inc(2);
        let text = registry.render_text();
        assert!(text.contains("# TYPE exec_calls counter\nexec_calls 2\n"));
        assert!(text.contains("# TYPE pool_threads gauge\npool_threads 4\n"));
        assert!(text.contains("stage_wall_nanos_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("stage_wall_nanos_count 3"));
    }
}
