//! Tier-breakdown report of the simulation-first compatibility funnel.
//!
//! Builds the pairwise-compatibility graph of a scaled benchmark profile
//! twice — once with the paper's all-SAT offline phase and once with the
//! three-tier funnel — verifies the adjacency matrices are bit-identical,
//! and reports how each tier resolved the pairs plus the reduction in
//! pairwise SAT queries.
//!
//! Usage: `funnel [--scale N] [--seed N] [--theta F] [--patterns N]
//! [--threads N] [--limit K]` (defaults match the acceptance profile: c2670
//! at scale 20, θ = 0.2).

use std::time::Instant;

use deterrent_core::{CompatBuildOptions, CompatStrategy, CompatibilityGraph, FunnelOptions};
use netlist::synth::BenchmarkProfile;
use sim::rare::RareNetAnalysis;

struct Args {
    scale: usize,
    seed: u64,
    theta: f64,
    patterns: usize,
    threads: usize,
    limit: u32,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 20,
        seed: 3,
        theta: 0.2,
        patterns: 8192,
        threads: 1,
        limit: FunnelOptions::default().exhaustive_support_limit,
    };
    // A typo here would otherwise run the acceptance gate on the default
    // configuration while claiming the requested one, so parse strictly.
    fn parse_or_die<T: std::str::FromStr>(flag: &str, v: &str) -> T {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: invalid value {v:?} for {flag}");
            std::process::exit(2);
        })
    }
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        let value = argv.get(i + 1);
        match (argv[i].as_str(), value) {
            ("--scale", Some(v)) => args.scale = parse_or_die("--scale", v),
            ("--seed", Some(v)) => args.seed = parse_or_die("--seed", v),
            ("--theta", Some(v)) => args.theta = parse_or_die("--theta", v),
            ("--patterns", Some(v)) => args.patterns = parse_or_die("--patterns", v),
            ("--threads", Some(v)) => args.threads = parse_or_die("--threads", v),
            ("--limit", Some(v)) => args.limit = parse_or_die("--limit", v),
            (flag, _) => {
                eprintln!(
                    "error: unknown or valueless flag {flag:?} (expected --scale/--seed/--theta/--patterns/--threads/--limit <value>)"
                );
                std::process::exit(2);
            }
        }
        i += 2;
    }
    if !(args.theta > 0.0 && args.theta <= 0.5) {
        eprintln!("error: --theta must be in (0, 0.5], got {}", args.theta);
        std::process::exit(2);
    }
    if args.patterns == 0 {
        eprintln!("error: --patterns must be at least 1");
        std::process::exit(2);
    }
    args
}

fn main() {
    let args = parse_args();
    let profile = if args.scale <= 1 {
        BenchmarkProfile::c2670()
    } else {
        BenchmarkProfile::c2670().scaled(args.scale)
    };
    let netlist = profile.generate(args.seed);
    println!(
        "design {}: {} gates ({} logic), {} scan inputs",
        netlist.name(),
        netlist.num_gates(),
        netlist.num_logic_gates(),
        netlist.num_scan_inputs()
    );

    let analysis = RareNetAnalysis::estimate(&netlist, args.theta, args.patterns, args.seed);
    println!(
        "rare nets at θ = {}: {} ({} simulated patterns retained as witnesses)",
        args.theta,
        analysis.len(),
        analysis
            .witnesses()
            .map_or(0, sim::WitnessBank::num_patterns),
    );

    let t0 = Instant::now();
    let all_sat = CompatibilityGraph::build_with(
        &netlist,
        &analysis,
        &CompatBuildOptions {
            threads: args.threads,
            strategy: CompatStrategy::AllSat,
        },
    );
    let all_sat_time = t0.elapsed();

    let t1 = Instant::now();
    let funnel = CompatibilityGraph::build_with(
        &netlist,
        &analysis,
        &CompatBuildOptions {
            threads: args.threads,
            strategy: CompatStrategy::Funnel(FunnelOptions {
                exhaustive_support_limit: args.limit,
                ..FunnelOptions::default()
            }),
        },
    );
    let funnel_time = t1.elapsed();

    assert_eq!(
        funnel.adjacency(),
        all_sat.adjacency(),
        "funnel adjacency must be bit-identical to the all-SAT result"
    );
    println!("\nadjacency matrices are bit-identical ✓");

    let fs = funnel.stats();
    let along = all_sat.stats();
    println!(
        "\n{:<34} {:>12} {:>12}",
        "offline phase", "all-SAT", "funnel"
    );
    println!(
        "{:<34} {:>12} {:>12}",
        "kept rare nets", along.kept_rare_nets, fs.kept_rare_nets
    );
    println!(
        "{:<34} {:>12} {:>12}",
        "pairs total", along.pairs_total, fs.pairs_total
    );
    println!(
        "{:<34} {:>12} {:>12}",
        "  tier 1: sim-witnessed", along.pairs_sim_witnessed, fs.pairs_sim_witnessed
    );
    println!(
        "{:<34} {:>12} {:>12}",
        "  tier 2: structurally pruned",
        along.pairs_structurally_pruned,
        fs.pairs_structurally_pruned
    );
    println!(
        "{:<34} {:>12} {:>12}",
        "  tier 2: cone-enumerated", along.pairs_cone_enumerated, fs.pairs_cone_enumerated
    );
    println!(
        "{:<34} {:>12} {:>12}",
        "  tier 3: SAT-resolved", along.pairs_sat_resolved, fs.pairs_sat_resolved
    );
    println!(
        "{:<34} {:>12} {:>12}",
        "singleton SAT queries", along.singleton_sat_queries, fs.singleton_sat_queries
    );
    println!(
        "{:<34} {:>12} {:>12}",
        "total SAT queries",
        along.total_sat_queries(),
        fs.total_sat_queries()
    );
    println!(
        "{:<34} {:>12.1?} {:>12.1?}",
        "wall clock", all_sat_time, funnel_time
    );

    let pairwise_reduction = if fs.pairwise_sat_queries() == 0 {
        f64::INFINITY
    } else {
        along.pairwise_sat_queries() as f64 / fs.pairwise_sat_queries() as f64
    };
    println!(
        "\npairwise SAT queries: {} -> {} ({pairwise_reduction:.1}x reduction, {:.1}% of pairs SAT-free)",
        along.pairwise_sat_queries(),
        fs.pairwise_sat_queries(),
        100.0 * fs.sat_free_pair_fraction()
    );

    if pairwise_reduction >= 5.0 {
        println!("acceptance: ≥5x pairwise SAT reduction ✓");
    } else {
        println!("acceptance: FAILED — reduction below 5x");
        std::process::exit(1);
    }
}
