//! Figure 6: trigger coverage vs number of test patterns (cumulative curves)
//! for DETERRENT and TGRL on c2670 and c6288.

use baselines::{TestGenerator, Tgrl};
use deterrent_bench::{BenchInstance, HarnessOptions};
use netlist::synth::BenchmarkProfile;

fn main() {
    let options = HarnessOptions::from_args();
    for profile in [BenchmarkProfile::c2670(), BenchmarkProfile::c6288()] {
        let instance = BenchInstance::prepare(&profile, &options, 0.1);
        if instance.trojans.is_empty() {
            println!("{}: skipped (no Trojans at this scale)\n", profile.name);
            instance.finish(&options);
            continue;
        }
        println!(
            "Figure 6 — coverage vs number of patterns on {} ({} Trojans)\n",
            instance.name,
            instance.trojans.len()
        );

        let deterrent = instance.run_deterrent(options.deterrent_config());
        let tgrl_episodes = if options.scale <= 1 { 400 } else { 40 };
        let tgrl_patterns =
            Tgrl::new(tgrl_episodes, options.seed).generate(&instance.netlist, &instance.analysis);

        for (label, patterns) in [("DETERRENT", &deterrent.patterns), ("TGRL", &tgrl_patterns)] {
            let report = instance.coverage_report(patterns);
            let curve = report.cumulative_coverage_percent();
            println!(
                "  {label} ({} patterns, final coverage {:.1}%)",
                patterns.len(),
                report.coverage_percent()
            );
            // Print up to 16 sample points along the curve.
            let step = (curve.len() / 16).max(1);
            for (i, cov) in curve.iter().enumerate() {
                if i % step == 0 || i + 1 == curve.len() {
                    println!("    after {:>5} patterns: {:>6.1}%", i + 1, cov);
                }
            }
            if let Some(n) = report.patterns_for_fraction(0.95) {
                println!("    95% of its final coverage reached after {n} patterns");
            }
        }
        println!();
        instance.finish(&options);
    }
    println!(
        "Shape to verify: DETERRENT reaches its maximum coverage within a handful of \
         patterns, whereas TGRL needs its whole (much longer) test set."
    );
}
