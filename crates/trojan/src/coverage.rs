//! Trigger-coverage evaluation of test-pattern sets.

use netlist::Netlist;
use sim::{Simulator, TestPattern};

use crate::Trojan;

/// Coverage result for one pattern set against one Trojan population.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageReport {
    /// Number of Trojans whose trigger was activated by at least one pattern.
    pub detected: usize,
    /// Total number of Trojans evaluated.
    pub total: usize,
    /// Number of test patterns in the evaluated set.
    pub test_length: usize,
    /// For each pattern index, the cumulative number of Trojans detected by
    /// patterns `0..=index` (used for the coverage-vs-patterns figure).
    pub cumulative_detected: Vec<usize>,
}

impl CoverageReport {
    /// Trigger coverage in percent (0 when no Trojans were evaluated).
    #[must_use]
    pub fn coverage_percent(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.detected as f64 / self.total as f64
        }
    }

    /// Cumulative coverage percentage after each pattern.
    #[must_use]
    pub fn cumulative_coverage_percent(&self) -> Vec<f64> {
        self.cumulative_detected
            .iter()
            .map(|&d| {
                if self.total == 0 {
                    0.0
                } else {
                    100.0 * d as f64 / self.total as f64
                }
            })
            .collect()
    }

    /// Smallest number of patterns achieving `fraction` (0–1) of the final
    /// detected count, or `None` if nothing was detected.
    #[must_use]
    pub fn patterns_for_fraction(&self, fraction: f64) -> Option<usize> {
        if self.detected == 0 {
            return None;
        }
        let target = (self.detected as f64 * fraction).ceil() as usize;
        self.cumulative_detected
            .iter()
            .position(|&d| d >= target)
            .map(|i| i + 1)
    }
}

/// Evaluates trigger coverage of pattern sets against a fixed Trojan
/// population on one netlist.
///
/// Trigger activation is checked on the *golden* netlist (a trigger fires iff
/// all its rare-net conditions hold simultaneously), which is equivalent to
/// simulating each infected netlist and comparing outputs but far cheaper —
/// the payload is a deterministic XOR splice, so trigger activation implies
/// output corruption.
#[derive(Debug)]
pub struct CoverageEvaluator<'a> {
    simulator: Simulator<'a>,
    trojans: Vec<Trojan>,
}

impl<'a> CoverageEvaluator<'a> {
    /// Creates an evaluator for `netlist` and a fixed Trojan population.
    #[must_use]
    pub fn new(netlist: &'a Netlist, trojans: Vec<Trojan>) -> Self {
        Self {
            simulator: Simulator::new(netlist),
            trojans,
        }
    }

    /// The Trojan population under evaluation.
    #[must_use]
    pub fn trojans(&self) -> &[Trojan] {
        &self.trojans
    }

    /// Evaluates the coverage of `patterns`.
    #[must_use]
    pub fn evaluate(&self, patterns: &[TestPattern]) -> CoverageReport {
        let mut detected = vec![false; self.trojans.len()];
        let mut cumulative = Vec::with_capacity(patterns.len());
        let mut count = 0usize;
        // Process patterns in order (for the cumulative curve), but use the
        // packed simulator inside each 64-pattern chunk.
        self.simulator.run_chunked(patterns, |packed, base| {
            for p in 0..packed.batch_len() {
                let _ = base;
                for (ti, trojan) in self.trojans.iter().enumerate() {
                    if detected[ti] {
                        continue;
                    }
                    let fires = trojan
                        .trigger
                        .iter()
                        .all(|&(net, v)| packed.value(net, p) == v);
                    if fires {
                        detected[ti] = true;
                        count += 1;
                    }
                }
                cumulative.push(count);
            }
        });
        CoverageReport {
            detected: count,
            total: self.trojans.len(),
            test_length: patterns.len(),
            cumulative_detected: cumulative,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;
    use netlist::NetId;

    #[test]
    fn coverage_counts_triggered_trojans() {
        let nl = samples::rare_chain(4);
        let root = nl.net_by_name("and3").unwrap();
        let and1 = nl.net_by_name("and1").unwrap();
        let out = nl.primary_outputs()[0];
        let trojans = vec![
            Trojan::new(vec![(root, true)], out), // needs all ones
            Trojan::new(vec![(and1, true)], out), // needs x0=x1=1
        ];
        let evaluator = CoverageEvaluator::new(&nl, trojans);

        // Pattern 1100 activates and1 but not the root.
        let report = evaluator.evaluate(&[TestPattern::from_bit_string("1100")]);
        assert_eq!(report.detected, 1);
        assert_eq!(report.total, 2);
        assert!((report.coverage_percent() - 50.0).abs() < 1e-12);

        // Adding the all-ones pattern catches both.
        let report =
            evaluator.evaluate(&[TestPattern::from_bit_string("1100"), TestPattern::ones(4)]);
        assert_eq!(report.detected, 2);
        assert_eq!(report.cumulative_detected, vec![1, 2]);
        assert_eq!(report.patterns_for_fraction(1.0), Some(2));
        assert_eq!(report.patterns_for_fraction(0.5), Some(1));
    }

    #[test]
    fn empty_population_and_empty_patterns() {
        let nl = samples::c17();
        let evaluator = CoverageEvaluator::new(&nl, vec![]);
        let report = evaluator.evaluate(&[]);
        assert_eq!(report.coverage_percent(), 0.0);
        assert_eq!(report.patterns_for_fraction(0.9), None);
        assert!(report.cumulative_coverage_percent().is_empty());
    }

    #[test]
    fn cumulative_curve_is_monotone() {
        let nl = samples::majority5();
        let t1 = nl.net_by_name("t_0_1_2").unwrap();
        let t2 = nl.net_by_name("t_2_3_4").unwrap();
        let out = nl.primary_outputs()[0];
        let trojans = vec![
            Trojan::new(vec![(t1, true)], out),
            Trojan::new(vec![(t2, true)], out),
            Trojan::new(vec![(NetId(0), true), (NetId(1), true)], out),
        ];
        let evaluator = CoverageEvaluator::new(&nl, trojans);
        let patterns: Vec<TestPattern> = ["00000", "11100", "00111", "11111"]
            .iter()
            .map(|s| TestPattern::from_bit_string(s))
            .collect();
        let report = evaluator.evaluate(&patterns);
        for w in report.cumulative_detected.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(report.test_length, 4);
        assert_eq!(report.detected, 3);
    }
}
