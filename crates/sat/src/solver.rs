//! A CDCL (conflict-driven clause learning) SAT solver.
//!
//! The implementation follows the classic MiniSat recipe: two watched
//! literals per clause, first-UIP conflict analysis, activity-based (VSIDS)
//! decision heuristics with phase saving, restarts, and incremental solving
//! under assumptions. Two behaviours are configurable via [`SolverConfig`]:
//!
//! - **Restart policy** — the default is the Luby sequence
//!   ([`RestartPolicy::Luby`]); the original fixed geometric schedule
//!   ([`RestartPolicy::Geometric`]) stays selectable so the two can be
//!   differentially tested against each other.
//! - **Learned-clause deletion** — learned clauses carry their own activity
//!   (bumped when a clause participates in conflict analysis, decayed per
//!   conflict); when the live learned-clause count exceeds a cap,
//!   [`reduce_db`](Solver::reduce_db) deletes the low-activity half of the
//!   deletable learned clauses (binary clauses and clauses locked as reasons
//!   are always kept), compacts the clause arena, and repairs the watch lists
//!   and reason indices. The cap grows geometrically after each reduction so
//!   long searches still converge.
//!
//! Both features are on by default; [`SolverConfig::legacy`] reproduces the
//! pre-deletion solver exactly (geometric restarts, no deletion), which the
//! differential harness in `tests/sat_differential.rs` exploits: every
//! generated instance is solved under both configurations and against a
//! brute-force model enumerator, and the verdicts must agree.
//!
//! When a solve under assumptions returns UNSAT because an assumption is
//! contradicted, [`Solver::unsat_assumptions`] exposes the subset of the
//! assumption literals responsible (MiniSat's `analyzeFinal`).

use crate::order::VarOrder;
use crate::types::{Clause, Cnf, Lit, Var};

/// Outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// The formula is satisfiable; the model assigns every variable.
    Sat(Vec<bool>),
    /// The formula is unsatisfiable (under the given assumptions, if any).
    Unsat,
}

impl SolveResult {
    /// Returns `true` for [`SolveResult::Sat`].
    #[must_use]
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }

    /// The model, if satisfiable.
    #[must_use]
    pub fn model(&self) -> Option<&[bool]> {
        match self {
            SolveResult::Sat(m) => Some(m),
            SolveResult::Unsat => None,
        }
    }
}

/// Restart schedule for [`Solver::solve`].
///
/// Each `solve` call starts the schedule from its beginning; the conflict
/// budget of search episode `i` (1-based, within that call) is:
///
/// - `Luby { unit }` — `unit * luby(i)` where `luby` is the Luby sequence
///   1, 1, 2, 1, 1, 2, 4, 1, … (the universally-optimal restart schedule).
/// - `Geometric { first }` — `first`, then ×3/2 after every restart (the
///   original policy of this solver, kept selectable for differential
///   testing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartPolicy {
    /// Luby sequence scaled by `unit` conflicts.
    Luby {
        /// Base number of conflicts multiplied by the Luby sequence.
        unit: u64,
    },
    /// Fixed geometric schedule: `first` conflicts, growing ×3/2 per restart.
    Geometric {
        /// Conflict budget of the first search episode.
        first: u64,
    },
}

impl RestartPolicy {
    /// Conflict budget for search episode `episode` (1-based) of a solve call.
    #[must_use]
    pub fn budget(self, episode: u64) -> u64 {
        match self {
            RestartPolicy::Luby { unit } => unit.saturating_mul(luby(episode)),
            RestartPolicy::Geometric { first } => {
                let mut b = first;
                for _ in 1..episode {
                    b = b.saturating_mul(3) / 2;
                }
                b
            }
        }
    }
}

/// The Luby sequence: 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, …
/// (`i` is 1-based).
#[must_use]
pub fn luby(mut i: u64) -> u64 {
    debug_assert!(i >= 1);
    loop {
        // Smallest k with 2^k - 1 >= i.
        let mut k = 1u32;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
        if (1u64 << k) - 1 == i {
            return 1u64 << (k - 1);
        }
        // Recurse on the tail: luby(i - 2^(k-1) + 1).
        i -= (1u64 << (k - 1)) - 1;
    }
}

/// Tunable solver behaviour. `Default` enables the modern configuration
/// (Luby restarts + clause deletion); [`SolverConfig::legacy`] reproduces the
/// original solver (geometric restarts, no deletion) exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverConfig {
    /// Restart schedule.
    pub restarts: RestartPolicy,
    /// Whether learned-clause database reduction is enabled.
    pub clause_deletion: bool,
    /// Floor of the learned-clause cap. The effective initial cap is
    /// `max(learnt_cap_min, original_clauses / learnt_cap_origin_divisor)`.
    pub learnt_cap_min: u64,
    /// Cap growth per reduction, in percent (110 = ×1.1 per `reduce_db`).
    pub learnt_cap_growth_percent: u64,
    /// Divisor of the original-clause count in the cap floor (MiniSat keeps
    /// up to a third of the original count, divisor 3). `0` drops the
    /// originals term entirely, making `learnt_cap_min` the sole floor —
    /// useful to force reductions on small instances (stress tests, CI
    /// gates) where few clauses are ever learned.
    pub learnt_cap_origin_divisor: u64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            restarts: RestartPolicy::Luby { unit: 128 },
            clause_deletion: true,
            learnt_cap_min: 256,
            learnt_cap_growth_percent: 110,
            learnt_cap_origin_divisor: 3,
        }
    }
}

impl SolverConfig {
    /// The pre-deletion solver: fixed geometric restarts (first budget 128,
    /// ×3/2 per restart), no learned-clause deletion. With this
    /// configuration the solver's decision/conflict trace is bit-identical
    /// to the solver as it existed before clause deletion landed.
    #[must_use]
    pub fn legacy() -> Self {
        Self {
            restarts: RestartPolicy::Geometric { first: 128 },
            clause_deletion: false,
            learnt_cap_min: 256,
            learnt_cap_growth_percent: 110,
            learnt_cap_origin_divisor: 3,
        }
    }
}

/// Search statistics accumulated over the lifetime of a [`Solver`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of learned clauses.
    pub learned_clauses: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of `reduce_db` runs (learned-clause database reductions).
    pub reduces: u64,
    /// Total learned clauses deleted by `reduce_db`.
    pub deleted_clauses: u64,
    /// High-water mark of simultaneously live learned clauses.
    pub peak_learnts: u64,
}

impl SolverStats {
    /// Accumulates `other` into `self` (sums counters, max for the peak).
    /// Used to aggregate statistics across per-worker solver instances.
    pub fn merge(&mut self, other: &SolverStats) {
        self.conflicts += other.conflicts;
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.learned_clauses += other.learned_clauses;
        self.restarts += other.restarts;
        self.reduces += other.reduces;
        self.deleted_clauses += other.deleted_clauses;
        self.peak_learnts = self.peak_learnts.max(other.peak_learnts);
    }
}

const UNASSIGNED: u8 = 2;

/// Per-clause bookkeeping parallel to the clause arena.
#[derive(Debug, Clone, Copy)]
struct ClauseMeta {
    /// Learned (deletable) vs. original (permanent).
    learned: bool,
    /// Clause activity (bumped when the clause resolves a conflict).
    activity: f64,
}

/// A CDCL SAT solver.
///
/// Clauses are added with [`Solver::add_clause`]; [`Solver::solve`] may be
/// called repeatedly with different assumption sets (incremental usage), and
/// more clauses may be added between calls.
///
/// # Example
///
/// ```
/// use sat::{Lit, Solver, Var};
///
/// let mut solver = Solver::new();
/// let a = solver.new_var();
/// let b = solver.new_var();
/// solver.add_clause([a.positive(), b.positive()]);
/// solver.add_clause([a.negative()]);
/// let result = solver.solve(&[]);
/// let model = result.model().expect("satisfiable");
/// assert!(!model[a.index()] && model[b.index()]);
/// ```
#[derive(Debug, Clone)]
pub struct Solver {
    config: SolverConfig,
    clauses: Vec<Clause>,
    /// Parallel to `clauses`: learned flag + clause activity.
    meta: Vec<ClauseMeta>,
    /// watches[lit.code()] = indices of clauses currently watching `lit`.
    watches: Vec<Vec<usize>>,
    /// Current value per variable: 0 = false, 1 = true, 2 = unassigned.
    values: Vec<u8>,
    /// Decision level at which each variable was assigned.
    level: Vec<u32>,
    /// Reason clause index for each implied variable (usize::MAX = decision).
    reason: Vec<usize>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    propagate_head: usize,
    activity: Vec<f64>,
    activity_inc: f64,
    /// Clause-activity increment (decayed per conflict).
    clause_inc: f64,
    /// Decision order: activity-keyed max-heap over the variables
    /// (MiniSat's `order_heap`), making each decision O(log vars) instead of
    /// an O(vars) scan. Assigned variables may linger in the heap (lazy
    /// removal on pop) and are re-inserted when backtracking unassigns them.
    order: VarOrder,
    /// Saved phase per variable for phase-saving.
    phase: Vec<bool>,
    seen: Vec<bool>,
    unsat: bool,
    /// Live (non-deleted) learned clauses.
    live_learnts: u64,
    /// Number of original (non-learned) clauses, for the cap floor.
    original_clauses: u64,
    /// Current learned-clause cap; 0 = not yet initialised.
    learnt_cap: u64,
    /// Assumption subset responsible for the last assumption-level UNSAT.
    conflict_assumptions: Vec<Lit>,
    stats: SolverStats,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver with the default (modern) configuration.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(SolverConfig::default())
    }

    /// Creates an empty solver with an explicit configuration.
    #[must_use]
    pub fn with_config(config: SolverConfig) -> Self {
        Self {
            config,
            clauses: Vec::new(),
            meta: Vec::new(),
            watches: Vec::new(),
            values: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            propagate_head: 0,
            activity: Vec::new(),
            activity_inc: 1.0,
            clause_inc: 1.0,
            order: VarOrder::default(),
            phase: Vec::new(),
            seen: Vec::new(),
            unsat: false,
            live_learnts: 0,
            original_clauses: 0,
            learnt_cap: 0,
            conflict_assumptions: Vec::new(),
            stats: SolverStats::default(),
        }
    }

    /// Creates a solver preloaded with the clauses of `cnf`.
    #[must_use]
    pub fn from_cnf(cnf: &Cnf) -> Self {
        Self::from_cnf_with_config(cnf, SolverConfig::default())
    }

    /// Creates a configured solver preloaded with the clauses of `cnf`.
    #[must_use]
    pub fn from_cnf_with_config(cnf: &Cnf, config: SolverConfig) -> Self {
        let mut solver = Self::with_config(config);
        solver.reserve_vars(cnf.num_vars());
        for clause in cnf.clauses() {
            solver.add_clause(clause.iter().copied());
        }
        solver
    }

    /// The configuration this solver was built with.
    #[must_use]
    pub fn config(&self) -> SolverConfig {
        self.config
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.values.len() as u32);
        self.values.push(UNASSIGNED);
        self.level.push(0);
        self.reason.push(usize::MAX);
        self.activity.push(0.0);
        self.order.push_new_var(&self.activity);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Ensures at least `n` variables exist.
    pub fn reserve_vars(&mut self, n: usize) {
        while self.values.len() < n {
            self.new_var();
        }
    }

    /// Number of variables currently known to the solver.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.values.len()
    }

    /// Number of clauses (original + live learned).
    #[must_use]
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Number of live (non-deleted) learned clauses.
    #[must_use]
    pub fn live_learnts(&self) -> u64 {
        self.live_learnts
    }

    /// Current learned-clause cap (0 until the first cap check with clause
    /// deletion enabled).
    #[must_use]
    pub fn learnt_cap(&self) -> u64 {
        self.learnt_cap
    }

    /// Accumulated search statistics.
    #[must_use]
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// After an UNSAT [`Solver::solve`] under assumptions, the subset of the
    /// assumption literals responsible for the conflict (MiniSat's
    /// `analyzeFinal`). Empty when the formula itself is UNSAT (independent
    /// of the assumptions) or when the last solve was SAT.
    ///
    /// The conjunction of the formula with just these assumptions is
    /// guaranteed UNSAT — the differential harness verifies this against a
    /// brute-force enumerator.
    #[must_use]
    pub fn unsat_assumptions(&self) -> &[Lit] {
        &self.conflict_assumptions
    }

    fn value_lit(&self, lit: Lit) -> u8 {
        let v = self.values[lit.var().index()];
        if v == UNASSIGNED {
            UNASSIGNED
        } else if (v == 1) == lit.polarity() {
            1
        } else {
            0
        }
    }

    /// Adds a clause. Duplicate literals are removed and tautological clauses
    /// are ignored. Adding the empty clause makes the solver permanently
    /// unsatisfiable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        assert_eq!(
            self.decision_level(),
            0,
            "clauses may only be added at decision level 0"
        );
        let mut clause: Clause = lits.into_iter().collect();
        for lit in &clause {
            self.reserve_vars(lit.var().index() + 1);
        }
        clause.sort_by_key(|l| l.code());
        clause.dedup();
        // Tautology check (x ∨ ¬x).
        if clause.windows(2).any(|w| w[0].var() == w[1].var()) {
            return;
        }
        // Remove literals already false at level 0; skip clause if any literal
        // is already true at level 0.
        if clause.iter().any(|&l| self.value_lit(l) == 1) {
            return;
        }
        clause.retain(|&l| self.value_lit(l) != 0);

        match clause.len() {
            0 => self.unsat = true,
            1 => {
                if !self.enqueue(clause[0], usize::MAX) || self.propagate().is_some() {
                    self.unsat = true;
                }
            }
            _ => {
                let idx = self.clauses.len();
                self.watches[clause[0].code()].push(idx);
                self.watches[clause[1].code()].push(idx);
                self.clauses.push(clause);
                self.meta.push(ClauseMeta {
                    learned: false,
                    activity: 0.0,
                });
                self.original_clauses += 1;
            }
        }
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    /// Assigns `lit` to true with the given reason. Returns `false` if `lit`
    /// is already false (conflict at the caller's level).
    fn enqueue(&mut self, lit: Lit, reason: usize) -> bool {
        match self.value_lit(lit) {
            0 => false,
            1 => true,
            _ => {
                let v = lit.var().index();
                self.values[v] = u8::from(lit.polarity());
                self.level[v] = self.decision_level() as u32;
                self.reason[v] = reason;
                self.phase[v] = lit.polarity();
                self.trail.push(lit);
                true
            }
        }
    }

    /// Unit propagation. Returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<usize> {
        while self.propagate_head < self.trail.len() {
            let p = self.trail[self.propagate_head];
            self.propagate_head += 1;
            self.stats.propagations += 1;
            // Literal ¬p became false; visit clauses watching ¬p.
            let false_lit = !p;
            let mut watch_list = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            while i < watch_list.len() {
                let ci = watch_list[i];
                // Ensure the false literal is at position 1.
                if self.clauses[ci][0] == false_lit {
                    self.clauses[ci].swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci][1], false_lit);
                let first = self.clauses[ci][0];
                if self.value_lit(first) == 1 {
                    // Clause already satisfied; keep watching.
                    i += 1;
                    continue;
                }
                // Look for a replacement watch.
                let mut replaced = false;
                for k in 2..self.clauses[ci].len() {
                    let cand = self.clauses[ci][k];
                    if self.value_lit(cand) != 0 {
                        self.clauses[ci].swap(1, k);
                        self.watches[cand.code()].push(ci);
                        watch_list.swap_remove(i);
                        replaced = true;
                        break;
                    }
                }
                if replaced {
                    continue;
                }
                // No replacement: clause is unit or conflicting.
                if self.value_lit(first) == 0 {
                    // Conflict: restore remaining watches and report.
                    self.watches[false_lit.code()].extend_from_slice(&watch_list);
                    self.propagate_head = self.trail.len();
                    return Some(ci);
                }
                let ok = self.enqueue(first, ci);
                debug_assert!(ok);
                i += 1;
            }
            // Put back whatever remains in the (possibly shrunk) list, merged
            // with watches added during replacement search.
            let existing = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut merged = watch_list;
            merged.extend(existing);
            self.watches[false_lit.code()] = merged;
        }
        None
    }

    fn bump_activity(&mut self, var: Var) {
        let a = &mut self.activity[var.index()];
        *a += self.activity_inc;
        if *a > 1e100 {
            for act in &mut self.activity {
                *act *= 1e-100;
            }
            self.activity_inc *= 1e-100;
            self.order.rebuild(&self.activity);
        }
        self.order.bumped(var.index() as u32, &self.activity);
    }

    fn decay_activity(&mut self) {
        self.activity_inc /= 0.95;
    }

    fn bump_clause(&mut self, ci: usize) {
        let a = &mut self.meta[ci].activity;
        *a += self.clause_inc;
        if *a > 1e20 {
            for m in &mut self.meta {
                m.activity *= 1e-20;
            }
            self.clause_inc *= 1e-20;
        }
    }

    fn decay_clause_activity(&mut self) {
        self.clause_inc /= 0.999;
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, mut confl: usize) -> (Clause, usize) {
        let mut learned: Clause = Vec::new();
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut trail_idx = self.trail.len();
        let current_level = self.decision_level() as u32;
        let mut to_clear: Vec<Var> = Vec::new();

        loop {
            if self.meta[confl].learned {
                self.bump_clause(confl);
            }
            let clause = self.clauses[confl].clone();
            let start = usize::from(p.is_some());
            for &q in &clause[start..] {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    to_clear.push(v);
                    self.bump_activity(v);
                    if self.level[v.index()] == current_level {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Find the next literal on the trail (at the current level) to
            // resolve on.
            loop {
                trail_idx -= 1;
                let lit = self.trail[trail_idx];
                if self.seen[lit.var().index()] {
                    p = Some(lit);
                    break;
                }
            }
            let p_lit = p.expect("resolution literal");
            self.seen[p_lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learned.insert(0, !p_lit);
                break;
            }
            confl = self.reason[p_lit.var().index()];
            debug_assert_ne!(confl, usize::MAX, "implied literal must have a reason");
        }

        for v in to_clear {
            self.seen[v.index()] = false;
        }

        // Backtrack level = highest level among learned[1..].
        let backtrack_level = learned[1..]
            .iter()
            .map(|l| self.level[l.var().index()] as usize)
            .max()
            .unwrap_or(0);

        // Move a literal of the backtrack level to position 1 so the watched
        // literals are correct after backjumping.
        if learned.len() > 1 {
            let (pos, _) = learned[1..]
                .iter()
                .enumerate()
                .max_by_key(|(_, l)| self.level[l.var().index()])
                .expect("non-empty");
            learned.swap(1, pos + 1);
        }

        (learned, backtrack_level)
    }

    /// MiniSat's `analyzeFinal`: `false_assumption` was found false while
    /// establishing the assumption levels. Walks the implication graph
    /// backwards and collects the subset of assumption decisions responsible.
    /// All decisions on the trail at this point are assumptions (branching
    /// only starts once every assumption level is established).
    fn analyze_final(&mut self, false_assumption: Lit) -> Vec<Lit> {
        let mut out = vec![false_assumption];
        if self.decision_level() == 0 {
            return out;
        }
        let v0 = false_assumption.var().index();
        if self.level[v0] > 0 {
            self.seen[v0] = true;
        }
        let start = self.trail_lim[0];
        for i in (start..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var().index();
            if !self.seen[v] {
                continue;
            }
            self.seen[v] = false;
            let r = self.reason[v];
            if r == usize::MAX {
                // A decision — at this stage of the search, an assumption.
                // `false_assumption`'s own variable may be on the trail as an
                // earlier assumption with the opposite polarity; that
                // assumption is part of the responsible set too.
                out.push(lit);
            } else {
                for &q in &self.clauses[r][1..] {
                    if self.level[q.var().index()] > 0 {
                        self.seen[q.var().index()] = true;
                    }
                }
            }
        }
        self.seen[v0] = false;
        out
    }

    fn backtrack_to(&mut self, level: usize) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().expect("non-root level");
            while self.trail.len() > lim {
                let lit = self.trail.pop().expect("trail entry");
                let v = lit.var().index();
                self.values[v] = UNASSIGNED;
                self.reason[v] = usize::MAX;
                self.order.insert(v as u32, &self.activity);
            }
        }
        self.propagate_head = self.trail.len().min(self.propagate_head);
        self.propagate_head = self.trail.len();
    }

    /// Current learned-clause cap, initialising it on first use. The cap
    /// floor tracks the original clause count
    /// (`max(min, originals / divisor)`, divisor 0 = min alone),
    /// and the cap itself grows by `learnt_cap_growth_percent` after every
    /// reduction.
    fn current_learnt_cap(&mut self) -> u64 {
        let origin_floor = match self.config.learnt_cap_origin_divisor {
            0 => 0,
            d => self.original_clauses / d,
        };
        let floor = self.config.learnt_cap_min.max(origin_floor);
        if self.learnt_cap < floor {
            self.learnt_cap = floor;
        }
        self.learnt_cap
    }

    /// Deletes the low-activity half of the deletable learned clauses and
    /// compacts the clause arena.
    ///
    /// A learned clause is deletable unless it is binary (cheap and
    /// valuable) or currently locked as the reason of an assigned variable.
    /// After compaction every watch list is rebuilt from clause positions
    /// 0/1 (the watched-literal invariant maintained by `propagate`) and the
    /// reason indices of all assigned variables are remapped. Safe at any
    /// decision level: deleted clauses are learned (logically redundant) and
    /// never reasons, so soundness and the implication graph are preserved.
    fn reduce_db(&mut self) {
        // Locked = reason of some currently-assigned variable.
        let mut locked = vec![false; self.clauses.len()];
        for &lit in &self.trail {
            let r = self.reason[lit.var().index()];
            if r != usize::MAX {
                locked[r] = true;
            }
        }
        let mut candidates: Vec<usize> = (0..self.clauses.len())
            .filter(|&ci| self.meta[ci].learned && !locked[ci] && self.clauses[ci].len() > 2)
            .collect();
        // Delete the low-activity half (ties broken by clause index so the
        // outcome is deterministic).
        candidates.sort_by(|&a, &b| {
            self.meta[a]
                .activity
                .total_cmp(&self.meta[b].activity)
                .then(a.cmp(&b))
        });
        let n_delete = candidates.len() / 2;
        if n_delete == 0 {
            // Nothing deletable: grow the cap so the check does not fire on
            // every conflict.
            self.learnt_cap = self
                .learnt_cap
                .saturating_mul(self.config.learnt_cap_growth_percent)
                / 100;
            return;
        }
        let mut remove = vec![false; self.clauses.len()];
        for &ci in &candidates[..n_delete] {
            remove[ci] = true;
        }

        // Compact the arena, building the old→new index remap.
        let mut remap = vec![usize::MAX; self.clauses.len()];
        let mut next = 0usize;
        for old in 0..self.clauses.len() {
            if !remove[old] {
                if old != next {
                    self.clauses.swap(old, next);
                    self.meta.swap(old, next);
                }
                remap[old] = next;
                next += 1;
            }
        }
        self.clauses.truncate(next);
        self.meta.truncate(next);

        // Rebuild every watch list from clause positions 0/1.
        for w in &mut self.watches {
            w.clear();
        }
        for (ci, clause) in self.clauses.iter().enumerate() {
            self.watches[clause[0].code()].push(ci);
            self.watches[clause[1].code()].push(ci);
        }

        // Remap reason indices (locked clauses were kept, so every live
        // reason survives).
        for &lit in &self.trail {
            let r = &mut self.reason[lit.var().index()];
            if *r != usize::MAX {
                debug_assert_ne!(remap[*r], usize::MAX, "reason clause deleted");
                *r = remap[*r];
            }
        }

        self.live_learnts -= n_delete as u64;
        self.stats.reduces += 1;
        self.stats.deleted_clauses += n_delete as u64;
        self.learnt_cap = self
            .learnt_cap
            .saturating_mul(self.config.learnt_cap_growth_percent)
            / 100;
    }

    /// Next decision variable: the unassigned variable of maximum activity,
    /// ties to the lowest index. O(log vars) via the order heap; assigned
    /// entries popped on the way are dropped (backtracking re-inserts them).
    fn pick_branch_var(&mut self) -> Option<Var> {
        let picked = loop {
            match self.order.pop(&self.activity) {
                None => break None,
                Some(v) if self.values[v as usize] == UNASSIGNED => break Some(Var(v)),
                Some(_) => {}
            }
        };
        #[cfg(debug_assertions)]
        assert_eq!(
            picked,
            self.pick_branch_var_linear(),
            "order heap must reproduce the linear scan's decision"
        );
        picked
    }

    /// The original O(vars) scan, kept as the reference the heap is checked
    /// against on every decision in debug builds.
    #[cfg(debug_assertions)]
    fn pick_branch_var_linear(&self) -> Option<Var> {
        let mut best: Option<(f64, usize)> = None;
        for (i, &v) in self.values.iter().enumerate() {
            if v == UNASSIGNED {
                let act = self.activity[i];
                match best {
                    Some((b, _)) if act <= b => {}
                    _ => best = Some((act, i)),
                }
            }
        }
        best.map(|(_, i)| Var(i as u32))
    }

    /// Solves the formula under the given `assumptions` (literals forced true
    /// for this call only).
    ///
    /// The solver state (learned clauses, activities, saved phases) persists
    /// across calls, making repeated related queries fast.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.conflict_assumptions.clear();
        if self.unsat {
            return SolveResult::Unsat;
        }
        for lit in assumptions {
            self.reserve_vars(lit.var().index() + 1);
        }
        self.backtrack_to(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return SolveResult::Unsat;
        }

        let mut episode = 1u64;
        loop {
            let budget = self.config.restarts.budget(episode);
            match self.search(assumptions, budget) {
                SearchOutcome::Sat(model) => {
                    self.backtrack_to(0);
                    return SolveResult::Sat(model);
                }
                SearchOutcome::Unsat => {
                    self.backtrack_to(0);
                    return SolveResult::Unsat;
                }
                SearchOutcome::Restart => {
                    self.stats.restarts += 1;
                    self.backtrack_to(0);
                    episode += 1;
                }
            }
        }
    }

    fn search(&mut self, assumptions: &[Lit], conflict_budget: u64) -> SearchOutcome {
        let mut conflicts_here = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.unsat = true;
                    return SearchOutcome::Unsat;
                }
                let (learned, backtrack_level) = self.analyze(confl);
                self.backtrack_to(backtrack_level);
                let asserting = learned[0];
                if learned.len() == 1 {
                    let ok = self.enqueue(asserting, usize::MAX);
                    if !ok {
                        self.unsat = true;
                        return SearchOutcome::Unsat;
                    }
                } else {
                    let idx = self.clauses.len();
                    self.watches[learned[0].code()].push(idx);
                    self.watches[learned[1].code()].push(idx);
                    self.clauses.push(learned);
                    self.meta.push(ClauseMeta {
                        learned: true,
                        activity: 0.0,
                    });
                    self.bump_clause(idx);
                    self.stats.learned_clauses += 1;
                    self.live_learnts += 1;
                    self.stats.peak_learnts = self.stats.peak_learnts.max(self.live_learnts);
                    let ok = self.enqueue(asserting, idx);
                    debug_assert!(ok);
                }
                self.decay_activity();
                self.decay_clause_activity();
                if self.config.clause_deletion && self.live_learnts > self.current_learnt_cap() {
                    self.reduce_db();
                }
                if conflicts_here >= conflict_budget && self.decision_level() > assumptions.len() {
                    return SearchOutcome::Restart;
                }
            } else {
                // Decide.
                if self.decision_level() < assumptions.len() {
                    let lit = assumptions[self.decision_level()];
                    match self.value_lit(lit) {
                        0 => {
                            self.conflict_assumptions = self.analyze_final(lit);
                            return SearchOutcome::Unsat;
                        }
                        1 => {
                            // Already true: open an empty decision level so the
                            // assumption indexing stays aligned.
                            self.trail_lim.push(self.trail.len());
                        }
                        _ => {
                            self.trail_lim.push(self.trail.len());
                            self.stats.decisions += 1;
                            let ok = self.enqueue(lit, usize::MAX);
                            debug_assert!(ok);
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => {
                        // Complete assignment: build the model.
                        let model = self
                            .values
                            .iter()
                            .enumerate()
                            .map(|(i, &v)| {
                                if v == UNASSIGNED {
                                    self.phase[i]
                                } else {
                                    v == 1
                                }
                            })
                            .collect();
                        return SearchOutcome::Sat(model);
                    }
                    Some(var) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let lit = var.lit(self.phase[var.index()]);
                        let ok = self.enqueue(lit, usize::MAX);
                        debug_assert!(ok);
                    }
                }
            }
        }
    }
}

enum SearchOutcome {
    Sat(Vec<bool>),
    Unsat,
    Restart,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: i64) -> Lit {
        Lit::from_dimacs(v)
    }

    #[test]
    fn trivially_sat_and_unsat() {
        let mut s = Solver::new();
        s.add_clause([lit(1)]);
        assert!(s.solve(&[]).is_sat());

        let mut s = Solver::new();
        s.add_clause([lit(1)]);
        s.add_clause([lit(-1)]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert!(s.solve(&[]).is_sat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        s.add_clause([]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn simple_implication_chain() {
        // (¬1 ∨ 2) ∧ (¬2 ∨ 3) ∧ (1) forces 3.
        let mut s = Solver::new();
        s.add_clause([lit(-1), lit(2)]);
        s.add_clause([lit(-2), lit(3)]);
        s.add_clause([lit(1)]);
        let model = s.solve(&[]).model().unwrap().to_vec();
        assert!(model[0] && model[1] && model[2]);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // Pigeons p in {1,2,3}, holes h in {1,2}: var(p,h) = 2(p-1)+h.
        let var = |p: i64, h: i64| 2 * (p - 1) + h;
        let mut s = Solver::new();
        for p in 1..=3 {
            s.add_clause([lit(var(p, 1)), lit(var(p, 2))]);
        }
        for h in 1..=2 {
            for p1 in 1..=3 {
                for p2 in (p1 + 1)..=3 {
                    s.add_clause([lit(-var(p1, h)), lit(-var(p2, h))]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn assumptions_restrict_and_release() {
        // (1 ∨ 2) with assumption ¬1 forces 2; assumptions don't persist.
        let mut s = Solver::new();
        s.add_clause([lit(1), lit(2)]);
        let m = s.solve(&[lit(-1)]).model().unwrap().to_vec();
        assert!(!m[0] && m[1]);
        // Conflicting assumptions => UNSAT under assumptions, SAT without.
        assert_eq!(s.solve(&[lit(-1), lit(-2)]), SolveResult::Unsat);
        assert!(s.solve(&[]).is_sat());
        assert!(s.solve(&[lit(1)]).is_sat());
    }

    #[test]
    fn unsat_assumption_subset_is_reported() {
        // (1 ∨ 2): assumptions [¬1, ¬2] are jointly contradictory; assumption
        // 3 is irrelevant and must not appear in the reported subset.
        let mut s = Solver::new();
        s.add_clause([lit(1), lit(2)]);
        assert_eq!(s.solve(&[lit(3), lit(-1), lit(-2)]), SolveResult::Unsat);
        let subset = s.unsat_assumptions().to_vec();
        assert!(subset.contains(&lit(-2)) && subset.contains(&lit(-1)));
        assert!(!subset.contains(&lit(3)));
        // A SAT call clears the subset.
        assert!(s.solve(&[lit(1)]).is_sat());
        assert!(s.unsat_assumptions().is_empty());
    }

    #[test]
    fn unsat_assumptions_empty_for_formula_level_unsat() {
        let mut s = Solver::new();
        s.add_clause([lit(1)]);
        s.add_clause([lit(-1)]);
        assert_eq!(s.solve(&[lit(2)]), SolveResult::Unsat);
        assert!(s.unsat_assumptions().is_empty());
    }

    #[test]
    fn directly_contradictory_assumptions() {
        // x and ¬x assumed together: the subset is {x, ¬x} (both polarities).
        let mut s = Solver::new();
        s.add_clause([lit(1), lit(2)]); // keep var 1 known to the solver
        assert_eq!(s.solve(&[lit(1), lit(-1)]), SolveResult::Unsat);
        let subset = s.unsat_assumptions().to_vec();
        assert!(subset.contains(&lit(1)) && subset.contains(&lit(-1)));
    }

    #[test]
    fn xor_chain_sat() {
        // x1 ⊕ x2 = 1, x2 ⊕ x3 = 1, x1 ⊕ x3 = 0 is satisfiable.
        let mut s = Solver::new();
        // x1 ⊕ x2: (1∨2) ∧ (¬1∨¬2)
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(-1), lit(-2)]);
        s.add_clause([lit(2), lit(3)]);
        s.add_clause([lit(-2), lit(-3)]);
        // x1 ⊕ x3 = 0: (¬1∨3) ∧ (1∨¬3)
        s.add_clause([lit(-1), lit(3)]);
        s.add_clause([lit(1), lit(-3)]);
        let m = s.solve(&[]).model().unwrap().to_vec();
        assert!(m[0] ^ m[1]);
        assert!(m[1] ^ m[2]);
        assert!(!(m[0] ^ m[2]));
    }

    #[test]
    fn model_satisfies_random_3sat() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for round in 0..30 {
            let num_vars = 12;
            let num_clauses = 40;
            let mut cnf = Cnf::with_vars(num_vars);
            for _ in 0..num_clauses {
                let mut clause = Vec::new();
                for _ in 0..3 {
                    let v = rng.gen_range(0..num_vars) as u32;
                    clause.push(Var(v).lit(rng.gen_bool(0.5)));
                }
                cnf.add_clause(clause);
            }
            let mut solver = Solver::from_cnf(&cnf);
            match solver.solve(&[]) {
                SolveResult::Sat(model) => {
                    assert_eq!(cnf.eval(&model), Some(true), "round {round}: bad model");
                }
                SolveResult::Unsat => {
                    // Verify by brute force that it really is UNSAT.
                    let mut any = false;
                    for code in 0u32..(1 << num_vars) {
                        let assignment: Vec<bool> =
                            (0..num_vars).map(|i| (code >> i) & 1 == 1).collect();
                        if cnf.eval(&assignment) == Some(true) {
                            any = true;
                            break;
                        }
                    }
                    assert!(!any, "round {round}: solver said UNSAT but a model exists");
                }
            }
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(i as u64 + 1), e, "luby({})", i + 1);
        }
    }

    #[test]
    fn restart_budgets_follow_their_policies() {
        let luby_pol = RestartPolicy::Luby { unit: 100 };
        assert_eq!(luby_pol.budget(1), 100);
        assert_eq!(luby_pol.budget(3), 200);
        assert_eq!(luby_pol.budget(7), 400);
        let geo = RestartPolicy::Geometric { first: 128 };
        assert_eq!(geo.budget(1), 128);
        assert_eq!(geo.budget(2), 192);
        assert_eq!(geo.budget(3), 288);
    }

    /// Pigeonhole formula: `pigeons` into `pigeons - 1` holes (UNSAT with
    /// exponentially many conflicts — the classic CDCL stress instance).
    fn pigeonhole(pigeons: i64) -> Cnf {
        let holes = pigeons - 1;
        let var = |p: i64, h: i64| holes * (p - 1) + h;
        let mut cnf = Cnf::new();
        for p in 1..=pigeons {
            cnf.add_clause((1..=holes).map(|h| Lit::from_dimacs(var(p, h))));
        }
        for h in 1..=holes {
            for p1 in 1..=pigeons {
                for p2 in (p1 + 1)..=pigeons {
                    cnf.add_clause([Lit::from_dimacs(-var(p1, h)), Lit::from_dimacs(-var(p2, h))]);
                }
            }
        }
        cnf
    }

    /// A conflict-rich instance solved with an artificially tiny cap: clause
    /// deletion must fire, keep the live count within the (growing) cap, and
    /// agree with the legacy no-deletion configuration on the verdict.
    #[test]
    fn reduce_db_fires_and_preserves_verdicts() {
        let tiny = SolverConfig {
            restarts: RestartPolicy::Luby { unit: 16 },
            clause_deletion: true,
            learnt_cap_min: 8,
            learnt_cap_growth_percent: 110,
            learnt_cap_origin_divisor: 0,
        };
        let cnf = pigeonhole(6);
        let mut modern = Solver::from_cnf_with_config(&cnf, tiny);
        let mut legacy = Solver::from_cnf_with_config(&cnf, SolverConfig::legacy());
        assert_eq!(modern.solve(&[]), SolveResult::Unsat);
        assert_eq!(legacy.solve(&[]), SolveResult::Unsat);
        let st = modern.stats();
        assert!(st.reduces > 0, "no reduction fired: {st:?}");
        assert!(st.deleted_clauses > 0);
        assert!(modern.live_learnts() <= modern.learnt_cap());
        assert!(st.peak_learnts >= modern.live_learnts());
        assert_eq!(legacy.stats().reduces, 0, "legacy must never reduce");
    }

    /// Clause deletion must stay sound across incremental solve calls: the
    /// same solver instance is queried repeatedly under assumptions while
    /// its learned DB is being reduced.
    #[test]
    fn reduce_db_sound_under_incremental_assumptions() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let tiny = SolverConfig {
            restarts: RestartPolicy::Luby { unit: 16 },
            clause_deletion: true,
            learnt_cap_min: 8,
            learnt_cap_growth_percent: 110,
            learnt_cap_origin_divisor: 0,
        };
        let mut rng = StdRng::seed_from_u64(21);
        let num_vars = 14;
        let mut cnf = Cnf::with_vars(num_vars);
        for _ in 0..56 {
            let mut clause = Vec::new();
            for _ in 0..3 {
                let v = rng.gen_range(0..num_vars) as u32;
                clause.push(Var(v).lit(rng.gen_bool(0.5)));
            }
            cnf.add_clause(clause);
        }
        let mut modern = Solver::from_cnf_with_config(&cnf, tiny);
        let mut legacy = Solver::from_cnf_with_config(&cnf, SolverConfig::legacy());
        for q in 0..30 {
            let a = Var(rng.gen_range(0..num_vars) as u32).lit(rng.gen_bool(0.5));
            let b = Var(rng.gen_range(0..num_vars) as u32).lit(rng.gen_bool(0.5));
            let assumptions = [a, b];
            let mr = modern.solve(&assumptions);
            let lr = legacy.solve(&assumptions);
            assert_eq!(mr.is_sat(), lr.is_sat(), "query {q}: verdicts differ");
            if let SolveResult::Sat(m) = &mr {
                assert_eq!(cnf.eval(m), Some(true), "query {q}: bad model");
                assert!(assumptions
                    .iter()
                    .all(|l| m[l.var().index()] == l.polarity()));
            }
        }
    }

    #[test]
    fn duplicate_and_tautological_clauses_handled() {
        let mut s = Solver::new();
        s.add_clause([lit(1), lit(1), lit(1)]);
        s.add_clause([lit(2), lit(-2)]); // tautology, ignored
        assert!(s.solve(&[]).is_sat());
        assert_eq!(s.num_clauses(), 0); // unit went straight to the trail
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new();
        s.add_clause([lit(1), lit(2)]);
        assert!(s.solve(&[]).is_sat());
        s.add_clause([lit(-1)]);
        s.add_clause([lit(-2)]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn fresh_ties_break_by_lowest_variable_index() {
        // All activities are zero on a fresh solver, so the old linear scan
        // decided the lowest-index unassigned variable first; the order heap
        // must reproduce that. With saved phase `false`, deciding ¬1 forces 2
        // from (1∨2), then ¬3 forces 4 from (3∨4).
        let mut s = Solver::new();
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(3), lit(4)]);
        let model = s.solve(&[]).model().unwrap().to_vec();
        assert_eq!(model, vec![false, true, false, true]);
        assert_eq!(s.stats().decisions, 2, "one decision per clause");
    }

    #[test]
    fn heap_decisions_match_linear_reference_on_random_instances() {
        // `pick_branch_var` asserts heap-vs-linear-scan agreement on *every*
        // decision in debug builds; driving a batch of conflict-heavy random
        // instances (bumps, restarts, backtracking, incremental reuse)
        // exercises that assertion thoroughly.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(123);
        for _ in 0..20 {
            let num_vars = 30;
            let mut solver = Solver::new();
            for _ in 0..120 {
                let clause: Vec<Lit> = (0..3)
                    .map(|_| Var(rng.gen_range(0..num_vars) as u32).lit(rng.gen_bool(0.5)))
                    .collect();
                solver.add_clause(clause);
            }
            let first = solver.solve(&[]);
            // Incremental re-solve under assumptions keeps the heap coherent
            // across backtrack_to(0) boundaries.
            let assumption = Var(0).lit(rng.gen_bool(0.5));
            let _ = solver.solve(&[assumption]);
            let second = solver.solve(&[]);
            assert_eq!(first.is_sat(), second.is_sat());
            assert!(solver.stats().decisions > 0);
        }
    }

    #[test]
    fn stats_accumulate_and_merge() {
        let mut s = Solver::new();
        s.add_clause([lit(1), lit(2), lit(3)]);
        s.add_clause([lit(-1), lit(-2)]);
        let _ = s.solve(&[]);
        assert!(s.stats().decisions > 0);

        let mut total = SolverStats::default();
        total.merge(&s.stats());
        total.merge(&s.stats());
        assert_eq!(total.decisions, 2 * s.stats().decisions);
        assert_eq!(total.peak_learnts, s.stats().peak_learnts);
    }
}
