//! `trace-check` — validates DETERRENT JSONL trace files against the
//! telemetry schema and emits canonical projections for diffing.
//!
//! ```text
//! trace-check FILE...               validate every line of every file
//! trace-check --canonical FILE      validate, then print the canonical
//!                                   (sorted, thread-invariant) projection
//!                                   to stdout for `cmp`/`diff` against
//!                                   another run
//! ```
//!
//! Exit codes: 0 = all lines valid, 1 = schema violation (the offending
//! file and line are named on stderr), 2 = usage or I/O error.

use std::fs;
use std::process::ExitCode;

use telemetry::{canonicalize_trace, parse_trace};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut canonical = false;
    let mut files = Vec::new();
    for arg in &args {
        match arg.as_str() {
            "--canonical" => canonical = true,
            "--help" | "-h" => {
                eprintln!("usage: trace-check [--canonical] FILE...");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("trace-check: unknown flag {flag:?}");
                return ExitCode::from(2);
            }
            path => files.push(path),
        }
    }
    if files.is_empty() {
        eprintln!("usage: trace-check [--canonical] FILE...");
        return ExitCode::from(2);
    }

    let mut total = 0usize;
    for path in &files {
        let document = match fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("trace-check: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        if canonical {
            match canonicalize_trace(&document) {
                Ok(projection) => print!("{projection}"),
                Err(e) => {
                    eprintln!("trace-check: {path}: {e}");
                    return ExitCode::from(1);
                }
            }
        } else {
            match parse_trace(&document) {
                Ok(events) => total += events.len(),
                Err(e) => {
                    eprintln!("trace-check: {path}: {e}");
                    return ExitCode::from(1);
                }
            }
        }
    }
    if !canonical {
        eprintln!(
            "trace-check: {total} event(s) across {} file(s): all valid",
            files.len()
        );
    }
    ExitCode::SUCCESS
}
