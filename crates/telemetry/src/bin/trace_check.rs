//! `trace-check` — validates DETERRENT JSONL trace files against the
//! telemetry schema and emits canonical projections for diffing.
//!
//! ```text
//! trace-check FILE...               validate every line of every file
//! trace-check --canonical FILE      validate, then print the canonical
//!                                   (sorted, thread-invariant) projection
//!                                   to stdout for `cmp`/`diff` against
//!                                   another run
//! trace-check --require-span NAME   additionally fail unless some event
//!                                   is named NAME or sits under a NAME
//!                                   span (repeatable; combines with
//!                                   --canonical)
//! ```
//!
//! Exit codes: 0 = all lines valid (and every required span present),
//! 1 = schema violation or missing required span (named on stderr),
//! 2 = usage or I/O error.

use std::fs;
use std::process::ExitCode;

use telemetry::{canonicalize_trace, parse_trace, TraceEvent};

/// Whether `event` satisfies `--require-span name`: it *is* the span, or
/// any segment of its path descends from one.
fn mentions_span(event: &TraceEvent, name: &str) -> bool {
    event.name == name || event.path.split('/').any(|segment| segment == name)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut canonical = false;
    let mut required: Vec<String> = Vec::new();
    let mut files = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--canonical" => canonical = true,
            "--require-span" => {
                i += 1;
                match args.get(i) {
                    Some(name) => required.push(name.clone()),
                    None => {
                        eprintln!("trace-check: --require-span needs a value");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!("usage: trace-check [--canonical] [--require-span NAME]... FILE...");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("trace-check: unknown flag {flag:?}");
                return ExitCode::from(2);
            }
            path => files.push(path.to_string()),
        }
        i += 1;
    }
    if files.is_empty() {
        eprintln!("usage: trace-check [--canonical] [--require-span NAME]... FILE...");
        return ExitCode::from(2);
    }

    let mut total = 0usize;
    let mut seen = vec![false; required.len()];
    for path in &files {
        let document = match fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("trace-check: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let events = match parse_trace(&document) {
            Ok(events) => events,
            Err(e) => {
                eprintln!("trace-check: {path}: {e}");
                return ExitCode::from(1);
            }
        };
        total += events.len();
        for (name, seen) in required.iter().zip(seen.iter_mut()) {
            *seen = *seen || events.iter().any(|event| mentions_span(event, name));
        }
        if canonical {
            match canonicalize_trace(&document) {
                Ok(projection) => print!("{projection}"),
                Err(e) => {
                    eprintln!("trace-check: {path}: {e}");
                    return ExitCode::from(1);
                }
            }
        }
    }
    let mut missing = false;
    for (name, seen) in required.iter().zip(&seen) {
        if !seen {
            eprintln!("trace-check: required span {name:?} not found in any input file");
            missing = true;
        }
    }
    if missing {
        return ExitCode::from(1);
    }
    if !canonical {
        eprintln!(
            "trace-check: {total} event(s) across {} file(s): all valid",
            files.len()
        );
    }
    ExitCode::SUCCESS
}
