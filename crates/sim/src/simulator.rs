//! Scalar and 64-way bit-parallel gate-level simulation.

use netlist::{GateKind, NetId, Netlist};
use rand::RngCore;

use crate::TestPattern;

/// Net values produced by simulating a single pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetValues {
    values: Vec<bool>,
}

impl NetValues {
    /// The simulated value of `net`.
    ///
    /// # Panics
    ///
    /// Panics if `net` does not belong to the simulated netlist.
    #[must_use]
    pub fn value(&self, net: NetId) -> bool {
        self.values[net.index()]
    }

    /// All net values indexed by [`NetId`].
    #[must_use]
    pub fn as_slice(&self) -> &[bool] {
        &self.values
    }
}

/// Net values for a batch of up to 64 patterns, one bit per pattern packed
/// into a `u64` word per net.
#[derive(Debug, Clone)]
pub struct PackedValues {
    words: Vec<u64>,
    batch: usize,
}

impl PackedValues {
    /// The value of `net` under pattern `pattern_idx` of the batch.
    ///
    /// # Panics
    ///
    /// Panics if `pattern_idx >= batch_len()` or `net` is out of range.
    #[must_use]
    pub fn value(&self, net: NetId, pattern_idx: usize) -> bool {
        assert!(pattern_idx < self.batch, "pattern index out of range");
        (self.words[net.index()] >> pattern_idx) & 1 == 1
    }

    /// Packed word (one bit per pattern) for `net`.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    #[must_use]
    pub fn word(&self, net: NetId) -> u64 {
        self.words[net.index()]
    }

    /// Number of patterns in this batch (at most 64).
    #[must_use]
    pub fn batch_len(&self) -> usize {
        self.batch
    }

    /// All packed words indexed by [`NetId`].
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// An empty buffer for [`Simulator::run_batch_into`], letting a long run
    /// of batches reuse one allocation.
    #[must_use]
    pub fn scratch() -> Self {
        Self {
            words: Vec::new(),
            batch: 0,
        }
    }

    /// Number of patterns in the batch for which `net` is 1.
    #[must_use]
    pub fn count_ones(&self, net: NetId) -> u32 {
        let mask = if self.batch == 64 {
            u64::MAX
        } else {
            (1u64 << self.batch) - 1
        };
        (self.words[net.index()] & mask).count_ones()
    }
}

/// A reusable simulator bound to one netlist.
///
/// The simulator caches the topological order and the scan-input list, so
/// repeated [`Simulator::run`] / [`Simulator::run_batch`] calls avoid
/// re-deriving them. It borrows the netlist, keeping the netlist usable by
/// other components (SAT encoder, Trojan inserter) at the same time.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    scan_inputs: Vec<NetId>,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for `netlist`.
    #[must_use]
    pub fn new(netlist: &'a Netlist) -> Self {
        Self {
            netlist,
            scan_inputs: netlist.scan_inputs(),
        }
    }

    /// The netlist this simulator is bound to.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Simulates a single pattern and returns every net value.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width does not match
    /// [`netlist::Netlist::num_scan_inputs`].
    #[must_use]
    pub fn run(&self, pattern: &TestPattern) -> NetValues {
        assert_eq!(
            pattern.width(),
            self.scan_inputs.len(),
            "pattern width must equal the number of scan inputs"
        );
        let n = self.netlist.num_gates();
        let mut values = vec![false; n];
        for (i, &si) in self.scan_inputs.iter().enumerate() {
            values[si.index()] = pattern.bit(i);
        }
        let mut fanin_buf: Vec<bool> = Vec::with_capacity(8);
        for &id in self.netlist.topo_order() {
            let gate = self.netlist.gate(id);
            match gate.kind {
                GateKind::Input | GateKind::Dff => {}
                kind => {
                    fanin_buf.clear();
                    fanin_buf.extend(gate.fanin.iter().map(|&f| values[f.index()]));
                    values[id.index()] = kind.eval(&fanin_buf);
                }
            }
        }
        NetValues { values }
    }

    /// Simulates up to 64 patterns at once using bit-parallel words.
    ///
    /// # Panics
    ///
    /// Panics if `patterns` is empty, contains more than 64 entries, or any
    /// pattern has the wrong width.
    #[must_use]
    pub fn run_batch(&self, patterns: &[TestPattern]) -> PackedValues {
        let mut out = PackedValues::scratch();
        self.run_batch_into(patterns, &mut out);
        out
    }

    /// Like [`Simulator::run_batch`], but reuses `out`'s allocation — the
    /// per-thread scratch pattern for long simulation runs.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Simulator::run_batch`].
    pub fn run_batch_into(&self, patterns: &[TestPattern], out: &mut PackedValues) {
        assert!(
            !patterns.is_empty(),
            "batch must contain at least one pattern"
        );
        assert!(patterns.len() <= 64, "batch holds at most 64 patterns");
        for p in patterns {
            assert_eq!(
                p.width(),
                self.scan_inputs.len(),
                "pattern width must equal the number of scan inputs"
            );
        }
        let n = self.netlist.num_gates();
        out.words.clear();
        out.words.resize(n, 0);
        out.batch = patterns.len();
        let words = &mut out.words;
        for (i, &si) in self.scan_inputs.iter().enumerate() {
            let mut w = 0u64;
            for (p, pat) in patterns.iter().enumerate() {
                if pat.bit(i) {
                    w |= 1 << p;
                }
            }
            words[si.index()] = w;
        }
        let mut fanin_buf: Vec<u64> = Vec::with_capacity(8);
        for &id in self.netlist.topo_order() {
            let gate = self.netlist.gate(id);
            match gate.kind {
                GateKind::Input | GateKind::Dff => {}
                kind => {
                    fanin_buf.clear();
                    fanin_buf.extend(gate.fanin.iter().map(|&f| words[f.index()]));
                    words[id.index()] = kind.eval_packed(&fanin_buf);
                }
            }
        }
    }

    /// Simulates a *uniformly random* batch of 64 patterns drawn from `rng`,
    /// directly in packed form and into a reusable buffer.
    ///
    /// The batch is defined input-major: scan input `i` (in
    /// [`netlist::Netlist::scan_inputs`] order) takes the `i`-th `next_u64`
    /// draw as its packed word, so pattern `p` of the batch assigns input `i`
    /// the bit `(draw_i >> p) & 1`. This is the canonical random-chunk
    /// stream of the workspace — probability estimation, witness harvesting,
    /// and witness-pattern materialization
    /// ([`crate::PatternSource::Random`]) all share it. Generating packed
    /// words directly (instead of materializing 64 [`TestPattern`]s) keeps
    /// the hot loop free of allocations, which is what lets parallel
    /// simulation workers scale instead of fighting over the allocator.
    pub fn run_random_batch_into<R: RngCore + ?Sized>(&self, rng: &mut R, out: &mut PackedValues) {
        let n = self.netlist.num_gates();
        out.words.clear();
        out.words.resize(n, 0);
        out.batch = 64;
        let words = &mut out.words;
        for &si in &self.scan_inputs {
            words[si.index()] = rng.next_u64();
        }
        let mut fanin_buf: Vec<u64> = Vec::with_capacity(8);
        for &id in self.netlist.topo_order() {
            let gate = self.netlist.gate(id);
            match gate.kind {
                GateKind::Input | GateKind::Dff => {}
                kind => {
                    fanin_buf.clear();
                    fanin_buf.extend(gate.fanin.iter().map(|&f| words[f.index()]));
                    words[id.index()] = kind.eval_packed(&fanin_buf);
                }
            }
        }
    }

    /// Simulates an arbitrary number of patterns, invoking `visit` with the
    /// packed values of each 64-pattern chunk. The second argument of `visit`
    /// is the index of the first pattern in the chunk.
    pub fn run_chunked<F>(&self, patterns: &[TestPattern], mut visit: F)
    where
        F: FnMut(&PackedValues, usize),
    {
        for (chunk_idx, chunk) in patterns.chunks(64).enumerate() {
            let packed = self.run_batch(chunk);
            visit(&packed, chunk_idx * 64);
        }
    }

    /// Convenience: returns `true` if `pattern` drives every `(net, value)`
    /// pair in `targets` simultaneously.
    #[must_use]
    pub fn activates(&self, pattern: &TestPattern, targets: &[(NetId, bool)]) -> bool {
        let values = self.run(pattern);
        targets.iter().all(|&(net, v)| values.value(net) == v)
    }
}

/// One-shot convenience wrapper around [`Simulator::run`].
///
/// # Panics
///
/// Panics if the pattern width does not match the netlist's scan input count.
#[must_use]
pub fn simulate(netlist: &Netlist, pattern: &TestPattern) -> NetValues {
    Simulator::new(netlist).run(pattern)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn c17_known_vectors() {
        let nl = samples::c17();
        let sim = Simulator::new(&nl);
        let g22 = nl.net_by_name("G22").unwrap();
        let g23 = nl.net_by_name("G23").unwrap();
        // All zeros: G10=1, G11=1, G16=1, G19=1 => G22 = NAND(1,1)=0, G23=0.
        let v = sim.run(&TestPattern::zeros(5));
        assert!(!v.value(g22));
        assert!(!v.value(g23));
        // All ones: G10=0, G11=0, G16=1, G19=1 => G22=1, G23=0.
        let v = sim.run(&TestPattern::ones(5));
        assert!(v.value(g22));
        assert!(!v.value(g23));
    }

    #[test]
    fn adder_adds() {
        let nl = samples::adder4();
        let sim = Simulator::new(&nl);
        // Inputs are a0..a3, b0..b3, cin in scan order.
        for (a, b, cin) in [(3u8, 5u8, 0u8), (15, 15, 1), (9, 6, 1), (0, 0, 0)] {
            let mut bits = Vec::new();
            for i in 0..4 {
                bits.push((a >> i) & 1 == 1);
            }
            for i in 0..4 {
                bits.push((b >> i) & 1 == 1);
            }
            bits.push(cin == 1);
            let v = sim.run(&TestPattern::new(bits));
            let mut sum = 0u16;
            for i in 0..4 {
                let s = nl.net_by_name(&format!("sum{i}")).unwrap();
                if v.value(s) {
                    sum |= 1 << i;
                }
            }
            let cout = nl.net_by_name("cout3").unwrap();
            if v.value(cout) {
                sum |= 1 << 4;
            }
            assert_eq!(sum, u16::from(a) + u16::from(b) + u16::from(cin));
        }
    }

    #[test]
    fn packed_matches_scalar() {
        let nl = netlist::synth::BenchmarkProfile::c2670()
            .scaled(20)
            .generate(3);
        let sim = Simulator::new(&nl);
        let mut rng = StdRng::seed_from_u64(17);
        let patterns = TestPattern::random_batch(nl.num_scan_inputs(), 64, &mut rng);
        let packed = sim.run_batch(&patterns);
        for (i, p) in patterns.iter().enumerate() {
            let scalar = sim.run(p);
            for (id, _) in nl.iter() {
                assert_eq!(
                    packed.value(id, i),
                    scalar.value(id),
                    "net {id} pattern {i}"
                );
            }
        }
    }

    #[test]
    fn majority_votes() {
        let nl = samples::majority5();
        let sim = Simulator::new(&nl);
        let maj = nl.net_by_name("maj").unwrap();
        let cases = [
            ("11100", true),
            ("11000", false),
            ("10101", true),
            ("00000", false),
            ("11111", true),
        ];
        for (bits, expect) in cases {
            let v = sim.run(&TestPattern::from_bit_string(bits));
            assert_eq!(v.value(maj), expect, "{bits}");
        }
    }

    #[test]
    fn scan_counter_full_scan_semantics() {
        let nl = samples::scan_counter3();
        let sim = Simulator::new(&nl);
        // Scan inputs: en, q0, q1, q2. Overflow only when en=1 and q=111.
        let ovf = nl.net_by_name("ovf").unwrap();
        assert!(sim.activates(&TestPattern::from_bit_string("1111"), &[(ovf, true)]));
        assert!(sim.activates(&TestPattern::from_bit_string("1011"), &[(ovf, false)]));
    }

    #[test]
    fn run_chunked_visits_all_patterns() {
        let nl = samples::c17();
        let sim = Simulator::new(&nl);
        let mut rng = StdRng::seed_from_u64(5);
        let patterns = TestPattern::random_batch(5, 130, &mut rng);
        let mut seen = 0usize;
        sim.run_chunked(&patterns, |packed, base| {
            seen += packed.batch_len();
            assert!(base % 64 == 0);
        });
        assert_eq!(seen, 130);
    }

    #[test]
    fn run_batch_into_reuses_scratch_and_matches_run_batch() {
        let nl = samples::majority5();
        let sim = Simulator::new(&nl);
        let mut rng = StdRng::seed_from_u64(8);
        let mut scratch = PackedValues::scratch();
        for _ in 0..3 {
            let patterns = TestPattern::random_batch(5, 64, &mut rng);
            sim.run_batch_into(&patterns, &mut scratch);
            let fresh = sim.run_batch(&patterns);
            assert_eq!(scratch.words(), fresh.words());
            assert_eq!(scratch.batch_len(), fresh.batch_len());
        }
    }

    #[test]
    #[should_panic(expected = "pattern width")]
    fn wrong_width_panics() {
        let nl = samples::c17();
        let _ = Simulator::new(&nl).run(&TestPattern::zeros(3));
    }

    #[test]
    fn count_ones_masks_partial_batches() {
        let nl = samples::c17();
        let sim = Simulator::new(&nl);
        let patterns = vec![TestPattern::zeros(5), TestPattern::ones(5)];
        let packed = sim.run_batch(&patterns);
        let g1 = nl.net_by_name("G1").unwrap();
        assert_eq!(packed.count_ones(g1), 1);
        assert_eq!(packed.batch_len(), 2);
    }
}
