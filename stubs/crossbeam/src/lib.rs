//! Offline stand-in for the `crossbeam::thread` scoped-thread API.
//!
//! Since Rust 1.63 the standard library ships scoped threads, so this crate
//! is a thin adapter exposing the `crossbeam::thread::scope(|s| ...)` calling
//! convention (spawned closures receive a `&Scope` argument, `scope` returns
//! a `Result`) on top of [`std::thread::scope`].

#![forbid(unsafe_code)]

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// Error type carried by a failed scope or join (the panic payload).
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope handle through which threads are spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a scope handle so it
        /// can spawn further threads, matching the crossbeam signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the panic
        /// payload.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    /// Creates a scope for spawning threads that may borrow from the caller's
    /// stack. All spawned threads are joined before `scope` returns.
    ///
    /// Unlike crossbeam, a panicking child propagates through
    /// [`std::thread::scope`] when its handle was not explicitly joined, so
    /// the `Err` arm is reserved for payloads of explicitly joined threads —
    /// callers that `.expect()` the result behave identically either way.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let total = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let r = thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }
}
