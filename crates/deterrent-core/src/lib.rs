//! DETERRENT — Detecting Trojans using Reinforcement Learning (DAC 2022).
//!
//! This crate implements the paper's primary contribution: a reinforcement
//! learning agent that searches for *maximal sets of compatible rare nets*
//! of a gate-level netlist and turns the `k` largest sets into a compact test
//! pattern set that activates rare Trojan triggers.
//!
//! The pipeline (Figure 4 of the paper) is:
//!
//! 1. **Rare-net identification** — random logic simulation plus a rareness
//!    threshold ([`sim::rare::RareNetAnalysis`]).
//! 2. **Offline pairwise compatibility** — decides, for every pair of rare
//!    nets, whether one input pattern can drive both to their rare values
//!    simultaneously ([`CompatibilityGraph`]). The paper answers every pair
//!    with SAT across 64 processes; this implementation runs a three-tier
//!    simulation-first funnel (retained Monte-Carlo witnesses → disjoint
//!    cone-support pruning → cone-restricted incremental SAT) that reaches
//!    the bit-identical graph with a fraction of the SAT queries.
//! 3. **RL training** — a PPO agent over the compatible-set MDP
//!    ([`CompatSetEnv`]) with action masking, configurable reward mode
//!    (all-steps vs end-of-episode), and boosted exploration.
//! 4. **Set selection and pattern generation** — the `k` largest distinct
//!    compatible sets are justified by the SAT oracle into test patterns
//!    ([`generate_patterns`]).
//!
//! The one-stop entry point is [`Deterrent`]:
//!
//! ```
//! use deterrent_core::{Deterrent, DeterrentConfig};
//! use netlist::synth::BenchmarkProfile;
//!
//! let netlist = BenchmarkProfile::c2670().scaled(30).generate(1);
//! let config = DeterrentConfig::fast_preset();
//! let result = Deterrent::new(&netlist, config).run();
//! assert!(!result.patterns.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compat;
mod config;
mod env;
mod pipeline;
mod selection;

pub use compat::{
    CompatBuildOptions, CompatStats, CompatStrategy, CompatibilityGraph, FunnelOptions,
};
pub use config::{CompatCheck, DeterrentConfig, RewardMode};
pub use env::CompatSetEnv;
pub use pipeline::{Deterrent, DeterrentResult, TrainingMetrics};
pub use selection::{
    generate_patterns, generate_patterns_with, select_k_largest, PatternGenStats, RareNetSet,
};
