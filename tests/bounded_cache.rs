//! The bounded disk cache: budgets, LRU sidecar order, read pinning, slim
//! policy artifacts, and the offline maintenance API.
//!
//! The contract under test extends `tests/disk_cache.rs`: with a
//! [`CachePolicy`] attached, the cache directory never exceeds its byte
//! budget after an insert; victims are chosen least-recently-used by the
//! `.lru` sidecar stamps (which survive process boundaries — emulated here
//! with fresh stores on one directory); artifacts *read* by a store are
//! never evicted by that same store; and the slim train-stage codec
//! variant changes file sizes, never results.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use deterrent_repro::deterrent_core::cache::{cache_stats, gc, verify};
use deterrent_repro::deterrent_core::{
    ArtifactStore, CachePolicy, DeterrentConfig, DeterrentResult, DeterrentSession, SLIM_LOSS_KEEP,
};
use deterrent_repro::netlist::synth::BenchmarkProfile;
use deterrent_repro::netlist::Netlist;

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_cache_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "deterrent-bounded-cache-{}-{}-{tag}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed),
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn test_netlist() -> Netlist {
    BenchmarkProfile::c2670().scaled(20).generate(11)
}

fn test_config(seed: u64) -> DeterrentConfig {
    DeterrentConfig::fast_preset()
        .with_threshold(0.2)
        .with_episodes(24)
        .with_eval_rollouts(8)
        .with_seed(seed)
}

fn run_with(netlist: &Netlist, config: DeterrentConfig, store: &ArtifactStore) -> DeterrentResult {
    DeterrentSession::with_store(netlist, config, store.clone()).run()
}

/// Every cache file (artifacts and sidecars) under `dir` with its size.
fn cache_files(dir: &Path) -> BTreeMap<PathBuf, u64> {
    let mut files = BTreeMap::new();
    let Ok(stages) = fs::read_dir(dir) else {
        return files;
    };
    for stage in stages.flatten() {
        if let Ok(entries) = fs::read_dir(stage.path()) {
            for entry in entries.flatten() {
                if let Ok(meta) = entry.metadata() {
                    files.insert(entry.path(), meta.len());
                }
            }
        }
    }
    files
}

fn total_bytes(dir: &Path) -> u64 {
    cache_files(dir).values().sum()
}

/// The `.dtc` artifact paths under `dir`, sorted.
fn artifact_paths(dir: &Path) -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = cache_files(dir)
        .into_keys()
        .filter(|p| p.extension().is_some_and(|e| e == "dtc"))
        .collect();
    paths.sort();
    paths
}

#[test]
fn max_bytes_is_enforced_on_insert() {
    let nl = test_netlist();

    // Measure the unbounded footprint of a two-seed grid first.
    let unbounded_dir = temp_cache_dir("unbounded");
    let unbounded_store = ArtifactStore::with_disk(&unbounded_dir);
    let baseline_a = run_with(&nl, test_config(1), &unbounded_store);
    let baseline_b = run_with(&nl, test_config(2), &unbounded_store);
    let unbounded_total = total_bytes(&unbounded_dir);
    assert!(unbounded_total > 0);

    // Two thirds of that budget must force evictions — and the directory
    // must end every insert under budget, which subsumes ending the run
    // under budget.
    let budget = unbounded_total * 2 / 3;
    let bounded_dir = temp_cache_dir("bounded");
    let bounded_store = ArtifactStore::with_disk_policy(
        &bounded_dir,
        CachePolicy::default().with_max_bytes(budget),
    );
    let bounded_a = run_with(&nl, test_config(1), &bounded_store);
    let bounded_b = run_with(&nl, test_config(2), &bounded_store);

    assert!(
        total_bytes(&bounded_dir) <= budget,
        "cache size {} exceeds the {budget}-byte budget",
        total_bytes(&bounded_dir)
    );
    assert!(
        artifact_paths(&bounded_dir).len() < artifact_paths(&unbounded_dir).len(),
        "a budget two thirds of the unbounded footprint must evict something"
    );
    // Budgets never affect results.
    assert_eq!(baseline_a.patterns, bounded_a.patterns);
    assert_eq!(baseline_b.patterns, bounded_b.patterns);
    assert_eq!(baseline_a.sets, bounded_a.sets);
    assert_eq!(baseline_b.sets, bounded_b.sets);

    let _ = fs::remove_dir_all(&unbounded_dir);
    let _ = fs::remove_dir_all(&bounded_dir);
}

#[test]
fn per_stage_budget_prunes_only_the_oversized_stage() {
    let nl = test_netlist();
    let dir = temp_cache_dir("per-stage");

    // Unbounded first: measure the train directory (policy artifacts
    // dominate the cache — the motivating observation).
    let store = ArtifactStore::with_disk(&dir);
    for seed in [1, 2, 3] {
        let _ = run_with(&nl, test_config(seed), &store);
    }
    let train_dir_bytes = || -> u64 {
        fs::read_dir(dir.join("train"))
            .map(|it| {
                it.flatten()
                    .filter_map(|e| e.metadata().ok().map(|m| m.len()))
                    .sum()
            })
            .unwrap_or(0)
    };
    let full_train = train_dir_bytes();
    assert!(full_train > 0);
    let analyze_count = artifact_paths(&dir)
        .iter()
        .filter(|p| p.parent().is_some_and(|d| d.ends_with("analyze")))
        .count();
    assert_eq!(analyze_count, 3);

    // A fresh store with a per-stage cap of ~half the train directory
    // evicts oldest policies on the next insert and leaves every other
    // stage alone.
    let capped = ArtifactStore::with_disk_policy(
        &dir,
        CachePolicy::default().with_per_stage_max(full_train / 2),
    );
    let _ = run_with(&nl, test_config(4), &capped);
    assert!(
        train_dir_bytes() <= full_train / 2,
        "train dir must fit its cap"
    );
    let analyze_after = artifact_paths(&dir)
        .iter()
        .filter(|p| p.parent().is_some_and(|d| d.ends_with("analyze")))
        .count();
    assert_eq!(analyze_after, 4, "other stages keep every artifact");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn lru_order_is_respected_across_processes() {
    let nl = test_netlist();
    let dir = temp_cache_dir("lru");

    // "Process" 1 populates seed 1 then seed 2 (seed 1's stamps older).
    let writer = ArtifactStore::with_disk(&dir);
    let baseline = run_with(&nl, test_config(1), &writer);
    let seed1_files = artifact_paths(&dir);
    let _ = run_with(&nl, test_config(2), &writer);
    let both = total_bytes(&dir);

    // "Process" 2 (a fresh store) re-reads seed 1, refreshing its sidecar
    // stamps — now seed *2* is the least recently used.
    let toucher = ArtifactStore::with_disk(&dir);
    let warm = run_with(&nl, test_config(1), &toucher);
    assert_eq!(toucher.counters().total_misses(), 0, "seed 1 fully warm");
    assert_eq!(warm.patterns, baseline.patterns, "warm restore matches");

    // "Process" 3 inserts seed 3 under a budget that only holds two seeds'
    // worth (plus slack for per-seed size variance in loss histories and
    // harvests): the LRU victims must be seed 2's files, not the
    // recently-touched seed 1's.
    let budget = both + 8192;
    let evictor =
        ArtifactStore::with_disk_policy(&dir, CachePolicy::default().with_max_bytes(budget));
    let _ = run_with(&nl, test_config(3), &evictor);
    assert!(total_bytes(&dir) <= budget);
    for path in &seed1_files {
        assert!(
            path.exists(),
            "recently-used seed-1 artifact {path:?} was evicted before stale seed-2 files"
        );
    }
    // And a fourth store still serves seed 1 fully warm.
    let reader = ArtifactStore::with_disk(&dir);
    let again = run_with(&nl, test_config(1), &reader);
    assert_eq!(reader.counters().total_misses(), 0, "seed 1 still warm");
    assert_eq!(warm.patterns, again.patterns);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn eviction_never_claims_an_artifact_read_by_the_current_run() {
    let nl = test_netlist();
    let dir = temp_cache_dir("pinned");

    // Populate seeds 1 and 2 unbounded.
    let writer = ArtifactStore::with_disk(&dir);
    let _ = run_with(&nl, test_config(1), &writer);
    let seed1_files = artifact_paths(&dir);
    let _ = run_with(&nl, test_config(2), &writer);
    let both = total_bytes(&dir);

    // A bounded store *reads* seed 1 (pinning it), after which another
    // process makes seed 2 the most recently used — so pure LRU would now
    // evict seed 1 first.
    let budget = both + 8192;
    let bounded =
        ArtifactStore::with_disk_policy(&dir, CachePolicy::default().with_max_bytes(budget));
    let _ = run_with(&nl, test_config(1), &bounded);
    assert_eq!(bounded.counters().total_misses(), 0);
    let freshen = ArtifactStore::with_disk(&dir);
    let _ = run_with(&nl, test_config(2), &freshen);
    assert_eq!(freshen.counters().total_misses(), 0);

    // The bounded store now inserts seed 3, forcing evictions. Stamp-wise
    // seed 1 is the oldest, but the store read it this run — the pin must
    // divert eviction to seed 2.
    let _ = run_with(&nl, test_config(3), &bounded);
    assert!(total_bytes(&dir) <= budget);
    for path in &seed1_files {
        assert!(
            path.exists(),
            "artifact {path:?} was read by this store and must not be evicted by it"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn slim_and_full_policy_artifacts_produce_identical_greedy_rollouts() {
    let nl = test_netlist();
    let full_dir = temp_cache_dir("full");
    let slim_dir = temp_cache_dir("slim");

    let full_store = ArtifactStore::with_disk(&full_dir);
    let slim_store =
        ArtifactStore::with_disk_policy(&slim_dir, CachePolicy::default().with_slim_policy(true));
    let cold_full = run_with(&nl, test_config(1), &full_store);
    let cold_slim = run_with(&nl, test_config(1), &slim_store);
    // The slim knob changes what is persisted, never the live results.
    assert_eq!(cold_full.patterns, cold_slim.patterns);
    assert_eq!(
        cold_full.metrics.loss_history,
        cold_slim.metrics.loss_history
    );

    // Slim train-stage files are substantially smaller (the Adam moments
    // alone are ~2/3 of a full snapshot's floats).
    let train_size = |dir: &Path| -> u64 {
        fs::read_dir(dir.join("train"))
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "dtc"))
            .filter_map(|e| e.metadata().ok().map(|m| m.len()))
            .sum()
    };
    let (full_size, slim_size) = (train_size(&full_dir), train_size(&slim_dir));
    assert!(
        slim_size * 2 < full_size,
        "slim policy file ({slim_size} B) should be well under half the full one ({full_size} B)"
    );

    // Warm restarts that *re-roll* greedily from the restored policy
    // (a changed select section invalidates the sets artifact but not the
    // policy artifact) must agree bit-for-bit between slim and full.
    let reroll = test_config(1).with_eval_rollouts(12);
    let warm_full = run_with(&nl, reroll.clone(), &ArtifactStore::with_disk(&full_dir));
    let warm_slim = run_with(&nl, reroll, &ArtifactStore::with_disk(&slim_dir));
    assert_eq!(warm_full.sets, warm_slim.sets, "greedy rollouts differ");
    assert_eq!(warm_full.patterns, warm_slim.patterns);
    assert_eq!(
        warm_full.metrics.max_compatible_set,
        warm_slim.metrics.max_compatible_set
    );
    // The documented slim trade-off: the warm loss history is truncated.
    assert!(warm_slim.metrics.loss_history.len() <= SLIM_LOSS_KEEP);
    assert_eq!(
        warm_full.metrics.loss_history.len(),
        cold_full.metrics.loss_history.len()
    );

    let _ = fs::remove_dir_all(&full_dir);
    let _ = fs::remove_dir_all(&slim_dir);
}

#[test]
fn per_stage_cap_keeps_cheap_stages_warm_across_campaign_reruns() {
    // The CI bounded-cache gate in miniature: a four-seed "campaign" run
    // against a cache whose per-stage cap only the train directory
    // exceeds. The five cheap stages must be fully retained (and therefore
    // fully warm on the rerun); train recomputes for the evicted cells.
    // A tight *global* LRU budget cannot promise this — a cyclic rescan of
    // a working set larger than the budget is the classic LRU scan
    // anomaly, evicting every artifact just before it is needed — which is
    // exactly why the per-stage knob exists (policy files dominate).
    let nl = test_netlist();
    let seeds = [1u64, 2, 3, 4];

    // Self-calibrate: measure the unbounded train-directory footprint.
    let probe_dir = temp_cache_dir("probe");
    let probe = ArtifactStore::with_disk(&probe_dir);
    let baselines: Vec<DeterrentResult> = seeds
        .iter()
        .map(|&s| run_with(&nl, test_config(s), &probe))
        .collect();
    let train_bytes = |dir: &Path| -> u64 {
        fs::read_dir(dir.join("train"))
            .map(|it| {
                it.flatten()
                    .filter_map(|e| e.metadata().ok().map(|m| m.len()))
                    .sum()
            })
            .unwrap_or(0)
    };
    let cap = train_bytes(&probe_dir) * 5 / 8; // holds 2 of 4 policies
    let _ = fs::remove_dir_all(&probe_dir);

    let dir = temp_cache_dir("campaign");
    let policy = CachePolicy::default().with_per_stage_max(cap);
    let cold = ArtifactStore::with_disk_policy(&dir, policy);
    for &s in &seeds {
        let _ = run_with(&nl, test_config(s), &cold);
    }
    assert!(
        train_bytes(&dir) <= cap,
        "train dir over its cap after cold run"
    );

    // Rerun from a fresh store (a new process): every retained stage is
    // 100% warm; only train recomputes, and only for evicted cells.
    let warm = ArtifactStore::with_disk_policy(&dir, policy);
    for (&s, baseline) in seeds.iter().zip(&baselines) {
        let rerun = run_with(&nl, test_config(s), &warm);
        assert_eq!(baseline.patterns, rerun.patterns, "seed {s}");
        assert_eq!(baseline.sets, rerun.sets, "seed {s}");
    }
    let counters = warm.counters();
    for (stage, c) in [
        ("estimate", counters.estimate),
        ("analyze", counters.analyze),
        ("build_graph", counters.build_graph),
        ("select", counters.select),
        ("generate", counters.generate),
    ] {
        assert_eq!(c.misses, 0, "{stage} must be fully retained: {c:?}");
        assert_eq!(c.disk_hits, seeds.len() as u64, "{stage}: {c:?}");
    }
    assert!(counters.train.misses > 0, "the capped stage recomputes");
    assert_eq!(counters.total_disk_corrupt(), 0);
    assert!(
        train_bytes(&dir) <= cap,
        "train dir over its cap after rerun"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn maintenance_api_stats_verify_and_gc() {
    let nl = test_netlist();
    let dir = temp_cache_dir("maintenance");
    let store = ArtifactStore::with_disk(&dir);
    let _ = run_with(&nl, test_config(1), &store);
    let _ = run_with(&nl, test_config(2), &store);

    // Stats agree with a filesystem walk.
    let stats = cache_stats(&dir).expect("stats");
    assert_eq!(stats.total_files(), 12, "two seeds × six stages");
    assert_eq!(stats.total_bytes(), total_bytes(&dir));

    // A clean cache verifies clean (healing is a no-op).
    let clean = verify(&dir, true);
    assert!(clean.is_clean(), "{clean:?}");
    assert_eq!(clean.valid, 12);

    // Corrupt one artifact and orphan one sidecar.
    let victim = artifact_paths(&dir).pop().unwrap();
    let mut bytes = fs::read(&victim).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    fs::write(&victim, &bytes).unwrap();
    let orphan = dir.join("analyze").join("deadbeefdeadbeef.lru");
    fs::write(&orphan, 7u64.to_le_bytes()).unwrap();

    // Report-only verify finds it and leaves it in place; healing verify
    // deletes it; afterwards the cache is clean again.
    let found = verify(&dir, false);
    assert_eq!(found.corrupt, vec![victim.clone()]);
    assert!(!found.is_clean() && victim.exists());
    assert!(found.io_errors.is_empty(), "corruption is not an I/O error");
    let healed = verify(&dir, true);
    assert_eq!(healed.corrupt, vec![victim.clone()]);
    assert!(!victim.exists(), "healing removes the corrupt file");
    assert!(verify(&dir, true).is_clean());

    // gc removes the orphan sidecar and prunes LRU-first to a budget.
    let before = cache_stats(&dir).unwrap().total_bytes();
    let report = gc(&dir, &CachePolicy::default().with_max_bytes(before / 2)).expect("gc");
    assert_eq!(report.orphan_sidecars_removed, 1);
    assert!(!orphan.exists());
    assert!(report.evicted_files > 0);
    assert!(report.bytes_remaining <= before / 2);
    assert_eq!(report.bytes_remaining, total_bytes(&dir));

    // What survived still verifies.
    assert!(verify(&dir, true).is_clean());
    let _ = fs::remove_dir_all(&dir);
}
