//! Repository-level property-based tests spanning multiple crates.

use deterrent_repro::deterrent_core::{CompatBuildOptions, CompatStrategy, CompatibilityGraph};
use deterrent_repro::netlist::synth::BenchmarkProfile;
use deterrent_repro::netlist::{bench, samples, GateKind, InputSupports, Netlist, NetlistBuilder};
use deterrent_repro::sat::{CircuitOracle, Cnf, Lit, Solver, Var};
use deterrent_repro::sim::rare::RareNetAnalysis;
use deterrent_repro::sim::{ConeSimulator, Simulator, TestPattern};
use proptest::prelude::*;

/// Builds a small random combinational netlist from a proptest strategy.
fn arbitrary_netlist() -> impl Strategy<Value = deterrent_repro::netlist::Netlist> {
    (2usize..6, 4usize..40, any::<u64>()).prop_map(|(inputs, gates, seed)| {
        let profile = BenchmarkProfile {
            name: format!("prop_{inputs}_{gates}"),
            num_inputs: inputs.max(2),
            num_outputs: 2,
            num_flip_flops: 0,
            num_gates: gates,
            rare_cones: 2,
            rare_cone_width: (3, 4),
        };
        profile.generate(seed)
    })
}

/// One of the small hand-written sample designs the funnel property test
/// runs against.
fn funnel_sample_netlist() -> impl Strategy<Value = Netlist> {
    (0usize..4).prop_map(|choice| match choice {
        0 => samples::c17(),
        1 => samples::majority5(),
        2 => samples::rare_chain(5),
        _ => samples::rare_chain(7),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The packed 64-way simulator always agrees with the scalar simulator.
    #[test]
    fn packed_simulation_matches_scalar(nl in arbitrary_netlist(), seed in any::<u64>()) {
        let sim = Simulator::new(&nl);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let patterns = TestPattern::random_batch(nl.num_scan_inputs(), 16, &mut rng);
        let packed = sim.run_batch(&patterns);
        for (i, p) in patterns.iter().enumerate() {
            let scalar = sim.run(p);
            for (id, _) in nl.iter() {
                prop_assert_eq!(packed.value(id, i), scalar.value(id));
            }
        }
    }

    /// Netlists survive a .bench round trip structurally intact.
    #[test]
    fn bench_round_trip(nl in arbitrary_netlist()) {
        let text = bench::write(&nl);
        let back = bench::parse(nl.name(), &text).expect("reparse");
        prop_assert_eq!(back.num_gates(), nl.num_gates());
        prop_assert_eq!(back.num_outputs(), nl.num_outputs());
        prop_assert_eq!(back.depth(), nl.depth());
    }

    /// Any pattern returned by the SAT oracle really does justify the
    /// requested targets when simulated.
    #[test]
    fn oracle_patterns_verify_in_simulation(nl in arbitrary_netlist(), idx in any::<prop::sample::Index>(), value in any::<bool>()) {
        let internal = nl.internal_nets();
        prop_assume!(!internal.is_empty());
        let target = internal[idx.index(internal.len())];
        let mut oracle = CircuitOracle::new(&nl);
        if let Some(bits) = oracle.justify(&[(target, value)]) {
            let sim = Simulator::new(&nl);
            let pattern = TestPattern::new(bits);
            prop_assert_eq!(sim.run(&pattern).value(target), value);
        }
    }

    /// The CDCL solver agrees with brute force on small random CNFs.
    #[test]
    fn solver_agrees_with_brute_force(clauses in prop::collection::vec(prop::collection::vec((0u32..8, any::<bool>()), 1..4), 1..24)) {
        let mut cnf = Cnf::with_vars(8);
        for clause in &clauses {
            cnf.add_clause(clause.iter().map(|&(v, pol)| Lit::new(Var(v), pol)));
        }
        let mut solver = Solver::from_cnf(&cnf);
        let solver_sat = solver.solve(&[]).is_sat();
        let brute_sat = (0u32..(1 << 8)).any(|code| {
            let assignment: Vec<bool> = (0..8).map(|i| (code >> i) & 1 == 1).collect();
            cnf.eval(&assignment) == Some(true)
        });
        prop_assert_eq!(solver_sat, brute_sat);
    }

    /// Gate evaluation is consistent between the scalar and packed paths for
    /// arbitrary fanin vectors.
    #[test]
    fn gate_eval_packed_consistency(bits in prop::collection::vec(any::<bool>(), 1..6)) {
        for kind in [GateKind::And, GateKind::Nand, GateKind::Or, GateKind::Nor, GateKind::Xor, GateKind::Xnor] {
            let scalar = kind.eval(&bits);
            let words: Vec<u64> = bits.iter().map(|&b| if b { 1 } else { 0 }).collect();
            let packed = kind.eval_packed(&words) & 1 == 1;
            prop_assert_eq!(scalar, packed, "{}", kind);
        }
    }

    /// Every SAT-free verdict of the compatibility funnel agrees with
    /// full-netlist SAT ground truth: sim witnesses only claim compatible
    /// pairs, disjoint supports reduce pairs to their singletons, exhaustive
    /// cone enumeration is exact, and the assembled funnel graph is
    /// bit-identical to the all-SAT graph.
    #[test]
    fn funnel_verdicts_agree_with_sat_ground_truth(
        nl in funnel_sample_netlist(),
        theta_pct in 8usize..45,
        patterns_exp in 6usize..11,
        seed in any::<u64>(),
    ) {
        let theta = theta_pct as f64 / 100.0;
        let analysis = RareNetAnalysis::estimate(&nl, theta, 1 << patterns_exp, seed);
        prop_assume!(!analysis.is_empty());

        let mut truth_oracle = CircuitOracle::new(&nl);
        let bank = analysis.witnesses().expect("estimate retains witnesses");
        let targets = analysis.targets();
        let roots: Vec<_> = targets.iter().map(|&(net, _)| net).collect();
        let supports = InputSupports::compute(&nl, &roots);
        let mut cone_sim = ConeSimulator::new(&nl, 10);

        for i in 0..targets.len() {
            for j in (i + 1)..targets.len() {
                let pair = [targets[i], targets[j]];
                let truth = truth_oracle.is_compatible(&pair);
                // Tier 1: a joint witness is a constructive compatibility proof.
                if bank.pair_witnessed(i, j) {
                    prop_assert!(truth, "witnessed pair ({i},{j}) must be SAT-compatible");
                }
                // Tier 2a: disjoint supports reduce the pair to its singletons.
                if supports.disjoint(i, j) {
                    let both = truth_oracle.is_compatible(&pair[..1])
                        && truth_oracle.is_compatible(&pair[1..]);
                    prop_assert_eq!(truth, both, "disjoint pair ({}, {})", i, j);
                }
                // Tier 2b: bounded exhaustive cone enumeration is exact.
                if let Some(verdict) = cone_sim.decide(&pair) {
                    prop_assert_eq!(verdict, truth, "enumerated pair ({}, {})", i, j);
                }
            }
        }

        // End to end: the funnel graph equals the all-SAT graph bit for bit.
        let all_sat = CompatibilityGraph::build_with(&nl, &analysis, &CompatBuildOptions {
            threads: 1,
            strategy: CompatStrategy::AllSat,
        });
        let funnel = CompatibilityGraph::build_with(&nl, &analysis, &CompatBuildOptions::default());
        prop_assert_eq!(funnel.adjacency(), all_sat.adjacency());
        prop_assert_eq!(funnel.rare_nets(), all_sat.rare_nets());
    }

    /// Adding gates through the builder never produces invalid netlists.
    #[test]
    fn builder_validation_is_total(arity in 1usize..5, count in 1usize..20, seed in any::<u64>()) {
        let mut b = NetlistBuilder::new("prop");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut pool = vec![b.input("a"), b.input("c")];
        for i in 0..count {
            let kind = [GateKind::And, GateKind::Or, GateKind::Nand, GateKind::Xor][i % 4];
            let fanin: Vec<_> = (0..arity)
                .map(|_| pool[rand::Rng::gen_range(&mut rng, 0..pool.len())])
                .collect();
            let mut dedup = fanin.clone();
            dedup.dedup();
            if let Ok(id) = b.gate(kind, format!("g{i}"), &dedup) {
                pool.push(id);
            }
        }
        let last = *pool.last().expect("non-empty");
        b.output(last);
        let nl = b.build().expect("builder-constructed netlists are valid");
        prop_assert!(nl.num_gates() >= 3);
    }
}

use rand::SeedableRng;
